package server

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	queryvis "repro"
	"repro/internal/corpus"
	"repro/internal/diagcache"
	"repro/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// fig1Isomorph rewrites the Fig. 1 alias names L1..L6 to a fresh set:
// syntactically distinct SQL with the identical logical pattern, the
// §1.1 equivalence the cache keys on.
func fig1Isomorph(tag string) string {
	sql := corpus.Fig1UniqueSet
	for i := 6; i >= 1; i-- { // longest first so L1 never clobbers L1x
		sql = strings.ReplaceAll(sql,
			fmt.Sprintf("L%d", i), fmt.Sprintf("Z%d%s", i, tag))
	}
	return sql
}

// decodeDiagram unmarshals a diagram response and zeroes the one field
// that legitimately differs between otherwise identical responses.
func decodeDiagram(t *testing.T, raw []byte) diagramResponse {
	t.Helper()
	var dr diagramResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatalf("decode diagram response: %v\n%s", err, raw)
	}
	dr.ElapsedMS = 0
	return dr
}

func getHealthz(t *testing.T, ts *httptest.Server) healthzResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	return hz
}

// TestCacheColdWarmOverHTTP: the first request misses and builds, the
// second is an exact-text hit, an isomorphic spelling is a pattern hit —
// all three byte-identical, with exactly one verified build behind them.
func TestCacheColdWarmOverHTTP(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts := newTestServer(t, Config{
		CacheEntries:  128,
		DefaultVerify: queryvis.VerifyDegrade,
		Metrics:       reg,
	})
	url := ts.URL + "/v1/diagram"

	st, hdr, raw := postFull(t, ts.Client(), url, diagramReq(corpus.Fig1UniqueSet, ""), nil)
	if st != http.StatusOK {
		t.Fatalf("cold status = %d\n%s", st, raw)
	}
	if got := hdr.Get(headerCache); got != "miss" {
		t.Fatalf("cold cache header = %q, want miss", got)
	}
	if got := hdr.Get("X-QueryVis-Verify-Status"); got != queryvis.VerifyStatusVerified {
		t.Fatalf("cold verify header = %q, want verified", got)
	}
	pattern := hdr.Get(headerPattern)
	if pattern == "" {
		t.Fatal("cold response is missing the pattern header")
	}
	cold := decodeDiagram(t, raw)
	if cold.Diagram == "" || cold.VerifyStatus != queryvis.VerifyStatusVerified {
		t.Fatalf("cold body = %+v", cold)
	}

	st, hdr, raw = postFull(t, ts.Client(), url, diagramReq(corpus.Fig1UniqueSet, ""), nil)
	if st != http.StatusOK || hdr.Get(headerCache) != "hit" {
		t.Fatalf("warm: status %d cache %q, want 200/hit", st, hdr.Get(headerCache))
	}
	if hdr.Get(headerPattern) != pattern {
		t.Fatalf("warm pattern header %q != cold %q", hdr.Get(headerPattern), pattern)
	}
	if warm := decodeDiagram(t, raw); !reflect.DeepEqual(warm, cold) {
		t.Fatalf("warm hit is not byte-identical to the cold build:\ncold %+v\nwarm %+v", cold, warm)
	}

	// A pattern-isomorphic spelling hits without a verified build.
	st, hdr, raw = postFull(t, ts.Client(), url, diagramReq(fig1Isomorph("x"), ""), nil)
	if st != http.StatusOK || hdr.Get(headerCache) != "hit" {
		t.Fatalf("isomorph: status %d cache %q, want 200/hit", st, hdr.Get(headerCache))
	}
	if iso := decodeDiagram(t, raw); !reflect.DeepEqual(iso, cold) {
		t.Fatalf("isomorph hit differs from the representative build:\n%+v", iso)
	}

	if n := reg.Value(diagcache.MetricBuilds); n != 1 {
		t.Fatalf("builds_total = %v for three requests of one pattern, want 1", n)
	}
	if n := reg.Value(diagcache.MetricRequests, "outcome", "miss"); n != 1 {
		t.Fatalf("miss count = %v, want 1", n)
	}
	hits := reg.Value(diagcache.MetricRequests, "outcome", "hit") +
		reg.Value(diagcache.MetricRequests, "outcome", "hit_pattern")
	if hits != 2 {
		t.Fatalf("hit count = %v, want 2", hits)
	}

	hz := getHealthz(t, ts)
	if hz.Cache == nil {
		t.Fatal("healthz has no cache section with caching enabled")
	}
	if hz.Cache.Entries != 1 || hz.Cache.Builds != 1 || hz.Cache.Hits != 2 || hz.Cache.Misses != 1 {
		t.Fatalf("healthz cache = %+v", hz.Cache)
	}
}

// TestCacheDisabledNoHeader: with caching off the wire shape is the
// historical one — no cache header, no healthz section.
func TestCacheDisabledNoHeader(t *testing.T) {
	ts := newTestServer(t, Config{DefaultVerify: queryvis.VerifyDegrade})

	st, hdr, raw := postFull(t, ts.Client(), ts.URL+"/v1/diagram",
		diagramReq(corpus.Fig3QSome, ""), nil)
	if st != http.StatusOK {
		t.Fatalf("status = %d\n%s", st, raw)
	}
	if got := hdr.Get(headerCache); got != "" {
		t.Fatalf("cache header = %q with caching disabled", got)
	}
	if hz := getHealthz(t, ts); hz.Cache != nil {
		t.Fatalf("healthz cache = %+v with caching disabled", hz.Cache)
	}
}

// TestCacheVerifyOffUpgrade: an entry cached by a verify-off request is
// not acceptable to a degrade request — that one rebuilds with proof and
// replaces the entry, after which both request classes hit it. The
// verify-off wire shape (no verify_status) survives hits of the proven
// entry.
func TestCacheVerifyOffUpgrade(t *testing.T) {
	ts := newTestServer(t, Config{CacheEntries: 16})
	url := ts.URL + "/v1/diagram"

	post := func(verify, wantCache string) (http.Header, []byte) {
		t.Helper()
		st, hdr, raw := postFull(t, ts.Client(), url, diagramReq(corpus.Fig3QOnly, verify), nil)
		if st != http.StatusOK {
			t.Fatalf("verify=%q status = %d\n%s", verify, st, raw)
		}
		if got := hdr.Get(headerCache); got != wantCache {
			t.Fatalf("verify=%q cache header = %q, want %q", verify, got, wantCache)
		}
		return hdr, raw
	}

	// Default mode is off: the entry is cached unproven.
	_, raw := post("", "miss")
	if strings.Contains(string(raw), "verify_status") {
		t.Fatalf("verify=off response leaked a status:\n%s", raw)
	}
	post("", "hit")

	// A degrade request must not accept the unproven entry.
	hdr, raw := post("degrade", "miss")
	if hdr.Get("X-QueryVis-Verify-Status") != queryvis.VerifyStatusVerified {
		t.Fatalf("degrade rebuild verify header = %q", hdr.Get("X-QueryVis-Verify-Status"))
	}
	if dr := decodeDiagram(t, raw); dr.VerifyStatus != queryvis.VerifyStatusVerified {
		t.Fatalf("degrade rebuild verify_status = %q", dr.VerifyStatus)
	}

	// The verified replacement serves both classes of request.
	post("degrade", "hit")
	_, raw = post("off", "hit")
	if strings.Contains(string(raw), "verify_status") {
		t.Fatalf("verify=off hit of a proven entry leaked the status:\n%s", raw)
	}
}

// TestCacheRebindInvalidates: a shared cache re-bound by a server with a
// different limits/budget fingerprint is flushed — entries proven under
// one regime are not evidence under another.
func TestCacheRebindInvalidates(t *testing.T) {
	c := diagcache.New(diagcache.Config{})
	ts1 := newTestServer(t, Config{Cache: c, DefaultVerify: queryvis.VerifyDegrade})

	st, hdr, raw := postFull(t, ts1.Client(), ts1.URL+"/v1/diagram",
		diagramReq(corpus.Fig3QSome, ""), nil)
	if st != http.StatusOK || hdr.Get(headerCache) != "miss" {
		t.Fatalf("cold: status %d cache %q\n%s", st, hdr.Get(headerCache), raw)
	}
	if st, hdr, _ = postFull(t, ts1.Client(), ts1.URL+"/v1/diagram",
		diagramReq(corpus.Fig3QSome, ""), nil); st != http.StatusOK || hdr.Get(headerCache) != "hit" {
		t.Fatalf("warm: status %d cache %q", st, hdr.Get(headerCache))
	}

	// Same cache, different verify budget: the fingerprint changes and
	// construction flushes the cache.
	ts2 := newTestServer(t, Config{Cache: c, DefaultVerify: queryvis.VerifyDegrade, VerifyBudget: 123_456})
	if st := c.Stats(); st.Invalidations != 1 || st.Entries != 0 {
		t.Fatalf("stats after rebind = %+v, want 1 invalidation, 0 entries", st)
	}
	if st, hdr, _ = postFull(t, ts2.Client(), ts2.URL+"/v1/diagram",
		diagramReq(corpus.Fig3QSome, ""), nil); st != http.StatusOK || hdr.Get(headerCache) != "miss" {
		t.Fatalf("post-rebind: status %d cache %q, want a rebuild", st, hdr.Get(headerCache))
	}
}

// TestCacheMetricsGolden pins the Prometheus exposition of the cache
// metric families after a deterministic traffic script: one miss, two
// exact hits, one pattern hit, one uncacheable parse failure, one
// fault-seeded bypass. Only the byte gauge (render sizes) is
// normalized.
func TestCacheMetricsGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts := newTestServer(t, Config{
		CacheEntries:  32,
		DefaultVerify: queryvis.VerifyDegrade,
		Metrics:       reg,
	})
	url := ts.URL + "/v1/diagram"

	for _, step := range []struct {
		sql  string
		hdr  map[string]string
		want int
	}{
		{corpus.Fig1UniqueSet, nil, http.StatusOK},                    // miss
		{corpus.Fig1UniqueSet, nil, http.StatusOK},                    // hit
		{fig1Isomorph("g"), nil, http.StatusOK},                       // hit_pattern
		{fig1Isomorph("g"), nil, http.StatusOK},                       // hit (alias learned)
		{"SELECT FROM WHERE", nil, http.StatusUnprocessableEntity},    // uncacheable
		{corpus.Fig3QSome, map[string]string{"X-Fault-Seed": "4"}, 0}, // bypass (status seed-dependent)
	} {
		st, _, raw := postFull(t, ts.Client(), url, diagramReq(step.sql, ""), step.hdr)
		if step.want != 0 && st != step.want {
			t.Fatalf("step %q: status = %d, want %d\n%s", step.sql, st, step.want, raw)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	exposition, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	var lines []string
	bytesRe := regexp.MustCompile(`^queryvis_cache_bytes \d+(\.\d+)?(e\+\d+)?$`)
	for _, line := range strings.Split(string(exposition), "\n") {
		if !strings.Contains(line, "queryvis_cache_") {
			continue
		}
		if bytesRe.MatchString(line) {
			line = "queryvis_cache_bytes <BYTES>"
		}
		lines = append(lines, line)
	}
	got := strings.Join(lines, "\n") + "\n"

	golden := filepath.Join("testdata", "cache_metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("cache metrics exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
