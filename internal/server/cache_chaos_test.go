package server

import (
	"fmt"
	"net/http"
	"testing"

	queryvis "repro"
	"repro/internal/corpus"
	"repro/internal/diagcache"
	"repro/internal/faults"
	"repro/internal/quarantine"
	"repro/internal/telemetry"
)

// faultySeeds returns the first n seeds whose derived plan injects at
// least one pipeline fault, so the chaos sweeps below never waste a
// request on an accidentally healthy plan.
func faultySeeds(t *testing.T, n int) []int64 {
	t.Helper()
	var out []int64
	for seed := int64(1); len(out) < n && seed < 1_000_000; seed++ {
		if len(faults.NewPlan(seed).Faults) > 0 {
			out = append(out, seed)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d faulty seeds", len(out))
	}
	return out
}

// TestCachePoisonNeverInserted is the cache-adversarial core: requests
// running under injected fault plans — whatever they produce — must
// bypass the cache in both directions. After a storm of faulted
// requests the cache holds nothing, and the first clean request still
// has to build.
func TestCachePoisonNeverInserted(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts := newTestServer(t, Config{
		CacheEntries:  64,
		DefaultVerify: queryvis.VerifyDegrade,
		Metrics:       reg,
	})
	url := ts.URL + "/v1/diagram"

	seeds := faultySeeds(t, 25)
	for _, seed := range seeds {
		_, hdr, _ := postFull(t, ts.Client(), url,
			diagramReq(corpus.Fig1UniqueSet, "degrade"),
			map[string]string{"X-Fault-Seed": fmt.Sprint(seed)})
		// Bypassed requests carry no cache disposition at all — "hit" here
		// would mean poisoned bytes were served, "miss" that the cache was
		// consulted under a fault plan.
		if got := hdr.Get(headerCache); got != "" {
			t.Fatalf("seed %d: cache header = %q, want none", seed, got)
		}
	}

	if n := reg.Value(diagcache.MetricInserts); n != 0 {
		t.Fatalf("inserts after %d faulted requests = %v, want 0", len(seeds), n)
	}
	if n := reg.Value(diagcache.MetricRequests, "outcome", "bypass"); n != float64(len(seeds)) {
		t.Fatalf("bypass count = %v, want %d", n, len(seeds))
	}
	if hz := getHealthz(t, ts); hz.Cache == nil || hz.Cache.Entries != 0 {
		t.Fatalf("healthz cache after fault storm = %+v, want empty", hz.Cache)
	}

	// Nothing was inserted, so the first clean request is a miss…
	st, hdr, raw := postFull(t, ts.Client(), url, diagramReq(corpus.Fig1UniqueSet, "degrade"), nil)
	if st != http.StatusOK || hdr.Get(headerCache) != "miss" {
		t.Fatalf("clean rebuild: status %d cache %q\n%s", st, hdr.Get(headerCache), raw)
	}
	// …and the hit that follows carries a real proof.
	st, hdr, _ = postFull(t, ts.Client(), url, diagramReq(corpus.Fig1UniqueSet, "degrade"), nil)
	if st != http.StatusOK || hdr.Get(headerCache) != "hit" {
		t.Fatalf("clean warm: status %d cache %q", st, hdr.Get(headerCache))
	}
	if got := hdr.Get("X-QueryVis-Verify-Status"); got != queryvis.VerifyStatusVerified {
		t.Fatalf("warm verify header = %q, want verified", got)
	}
}

// TestCacheHitsAlwaysVerified sweeps mixed clean and fault-seeded
// traffic and checks the blanket invariant on every single response:
// a cache hit always carries verify_status=verified, and a degraded
// response is never a cache hit.
func TestCacheHitsAlwaysVerified(t *testing.T) {
	ts := newTestServer(t, Config{
		CacheEntries:  64,
		DefaultVerify: queryvis.VerifyDegrade,
	})
	url := ts.URL + "/v1/diagram"

	queries := []string{
		corpus.Fig1UniqueSet,
		fig1Isomorph("a"),
		corpus.Fig3QSome,
		corpus.Fig3QOnly,
	}
	seeds := append([]int64{0, 0}, faultySeeds(t, 8)...) // 0 = clean request

	hits := 0
	for round := 0; round < 2; round++ {
		for _, sql := range queries {
			for _, seed := range seeds {
				var hdr map[string]string
				if seed != 0 {
					hdr = map[string]string{"X-Fault-Seed": fmt.Sprint(seed)}
				}
				st, h, raw := postFull(t, ts.Client(), url, diagramReq(sql, "degrade"), hdr)
				if h.Get(headerCache) == "hit" {
					hits++
					if st != http.StatusOK {
						t.Fatalf("cache hit with status %d\n%s", st, raw)
					}
					if got := h.Get("X-QueryVis-Verify-Status"); got != queryvis.VerifyStatusVerified {
						t.Fatalf("cache hit verify header = %q, want verified (seed %d, sql %.40q)", got, seed, sql)
					}
					if dr := decodeDiagram(t, raw); dr.VerifyStatus != queryvis.VerifyStatusVerified || dr.Degraded != "" {
						t.Fatalf("cache hit body verify_status=%q degraded=%q", dr.VerifyStatus, dr.Degraded)
					}
				}
				if h.Get("X-QueryVis-Degraded") != "" && h.Get(headerCache) == "hit" {
					t.Fatalf("degraded response served as a cache hit (seed %d)", seed)
				}
			}
		}
	}
	if hits == 0 {
		t.Fatal("sweep produced no cache hits; the invariant was never exercised")
	}
}

// TestCacheQuarantineRebuild: inputs that land in the quarantine corpus
// (a budget blowout, a fault-seeded strict verification failure) never
// leave anything behind in the cache — the next clean request rebuilds
// rather than hits.
func TestCacheQuarantineRebuild(t *testing.T) {
	store, err := quarantine.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	ts := newTestServer(t, Config{
		CacheEntries:  64,
		DefaultVerify: queryvis.VerifyDegrade,
		Quarantine:    store,
		VerifyBudget:  10_000,
		Metrics:       reg,
	})
	url := ts.URL + "/v1/diagram"

	// A wide query blows the verification budget: served degraded-of-proof
	// (status budget_exhausted), quarantined, and uncacheable.
	wide := wideBeersSQL(7)
	for i := 0; i < 2; i++ {
		st, hdr, raw := postFull(t, ts.Client(), url, diagramReq(wide, "degrade"), nil)
		if st != http.StatusOK {
			t.Fatalf("wide status = %d\n%s", st, raw)
		}
		if got := hdr.Get(headerCache); got == "hit" {
			t.Fatalf("round %d: unproven wide result served from cache", i)
		}
		if dr := decodeDiagram(t, raw); dr.VerifyStatus != queryvis.VerifyStatusBudget {
			t.Fatalf("round %d: verify_status = %q, want budget_exhausted", i, dr.VerifyStatus)
		}
	}

	// A fault-seeded strict request fails verification hard and is filed;
	// the fault plan also forces a full cache bypass.
	seed := verifyOnlySeed(t)
	st, hdr, raw := postFull(t, ts.Client(), url,
		diagramReq(corpus.Fig1UniqueSet, "strict"),
		map[string]string{"X-Fault-Seed": fmt.Sprint(seed)})
	if st != http.StatusInternalServerError {
		t.Fatalf("strict faulted status = %d\n%s", st, raw)
	}
	wantError(t, raw, CatVerifyFailed)
	if hdr.Get(headerCache) != "" {
		t.Fatalf("faulted request carries cache header %q", hdr.Get(headerCache))
	}

	stats, err := store.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entries != 2 {
		t.Fatalf("quarantine entries = %d, want 2 (budget + verify fault)", stats.Entries)
	}
	if n := reg.Value(diagcache.MetricInserts); n != 0 {
		t.Fatalf("quarantined traffic inserted %v cache entries", n)
	}

	// The quarantined pattern's next clean request rebuilds…
	st, hdr, _ = postFull(t, ts.Client(), url, diagramReq(corpus.Fig1UniqueSet, "degrade"), nil)
	if st != http.StatusOK || hdr.Get(headerCache) != "miss" {
		t.Fatalf("post-quarantine rebuild: status %d cache %q, want 200/miss", st, hdr.Get(headerCache))
	}
	// …and only a verified rebuild becomes a future hit.
	st, hdr, _ = postFull(t, ts.Client(), url, diagramReq(corpus.Fig1UniqueSet, "degrade"), nil)
	if st != http.StatusOK || hdr.Get(headerCache) != "hit" ||
		hdr.Get("X-QueryVis-Verify-Status") != queryvis.VerifyStatusVerified {
		t.Fatalf("post-quarantine warm: status %d cache %q verify %q",
			st, hdr.Get(headerCache), hdr.Get("X-QueryVis-Verify-Status"))
	}
}
