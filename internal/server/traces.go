package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// traceItem is one /v1/traces result: the raw record plus its rendered
// tree, so an operator with curl needs no client-side assembly.
type traceItem struct {
	telemetry.TraceRecord
	Tree string `json:"tree"`
}

// tracesResponse is the /v1/traces body.
type tracesResponse struct {
	Total  uint64      `json:"total"`
	Held   int         `json:"held"`
	Traces []traceItem `json:"traces"`
}

// defaultTraceLimit bounds an unfiltered /v1/traces response.
const defaultTraceLimit = 32

// handleTraces serves the process's trace ring as JSON, newest first.
// Query parameters: request_id, trace_id, pattern (exact match),
// min_ms (minimum total duration), limit. With telemetry disabled the
// route does not exist.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DisableTelemetry {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeAPIError(w, http.StatusMethodNotAllowed, apiError{
			Category: CatBadRequest, Message: "use GET",
		})
		return
	}
	q := r.URL.Query()
	f := telemetry.TraceFilter{
		RequestID: q.Get("request_id"),
		TraceID:   q.Get("trace_id"),
		Pattern:   q.Get("pattern"),
	}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeAPIError(w, http.StatusBadRequest, apiError{
				Category: CatBadRequest, Message: "min_ms must be a non-negative number",
			})
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	limit := defaultTraceLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeAPIError(w, http.StatusBadRequest, apiError{
				Category: CatBadRequest, Message: "limit must be a positive integer",
			})
			return
		}
		limit = n
	}
	recs := s.traces.Snapshot(f)
	if len(recs) > limit {
		recs = recs[:limit]
	}
	resp := tracesResponse{
		Total:  s.traces.Total(),
		Held:   s.traces.Len(),
		Traces: make([]traceItem, len(recs)),
	}
	for i, rec := range recs {
		resp.Traces[i] = traceItem{TraceRecord: rec, Tree: telemetry.FormatTree(rec.Spans)}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}
