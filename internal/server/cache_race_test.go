package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	queryvis "repro"
	"repro/internal/corpus"
	"repro/internal/diagcache"
	"repro/internal/telemetry"
)

// serveDirect drives the handler in-process (no sockets), returning
// status, headers, and the decoded body with elapsed_ms zeroed.
func serveDirect(t *testing.T, h http.Handler, sql, verify string) (int, http.Header, diagramResponse) {
	t.Helper()
	body, err := json.Marshal(diagramReq(sql, verify))
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/diagram", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var dr diagramResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &dr); err != nil {
			t.Errorf("decode: %v\n%s", err, rec.Body.Bytes())
		}
		dr.ElapsedMS = 0
	}
	return rec.Code, rec.Result().Header, dr
}

// TestCacheRaceSingleflight: N goroutines fire isomorphic-but-
// syntactically-distinct spellings of the Fig. 1 query concurrently.
// Singleflight must collapse them to exactly one verified pipeline
// execution, every response must be byte-identical, and the outcome
// counters must account for every request exactly once. Run under
// -race, this is also the cache's data-race battery.
func TestCacheRaceSingleflight(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv := New(Config{
		CacheEntries:  256,
		DefaultVerify: queryvis.VerifyDegrade,
		Metrics:       reg,
	})
	variants := []string{
		corpus.Fig1UniqueSet,
		fig1Isomorph("a"),
		fig1Isomorph("b"),
		fig1Isomorph("c"),
	}
	const goroutines, perG = 8, 3

	type reply struct {
		status int
		cache  string
		body   diagramResponse
	}
	replies := make([][]reply, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				st, hdr, dr := serveDirect(t, srv, variants[(g+i)%len(variants)], "degrade")
				replies[g] = append(replies[g], reply{st, hdr.Get(headerCache), dr})
			}
		}()
	}
	close(start)
	wg.Wait()

	var first *reply
	for g := range replies {
		for i := range replies[g] {
			r := &replies[g][i]
			if r.status != http.StatusOK {
				t.Fatalf("goroutine %d request %d: status %d", g, i, r.status)
			}
			if r.cache != "hit" && r.cache != "miss" {
				t.Fatalf("goroutine %d request %d: cache header %q", g, i, r.cache)
			}
			if r.body.VerifyStatus != queryvis.VerifyStatusVerified {
				t.Fatalf("goroutine %d request %d: verify_status %q", g, i, r.body.VerifyStatus)
			}
			if first == nil {
				first = r
			} else if !reflect.DeepEqual(r.body, first.body) {
				t.Fatalf("response bodies diverge across isomorphs:\nfirst %+v\n this %+v", first.body, r.body)
			}
		}
	}

	// Exactly one pipeline execution built the pattern…
	if n := reg.Value(diagcache.MetricBuilds); n != 1 {
		t.Fatalf("builds_total = %v, want exactly 1", n)
	}
	if n := reg.Value(diagcache.MetricInserts); n != 1 {
		t.Fatalf("inserts_total = %v, want exactly 1", n)
	}
	if n := reg.Value(diagcache.MetricRequests, "outcome", "miss"); n != 1 {
		t.Fatalf("miss count = %v, want exactly 1 (the leader)", n)
	}
	// …and no request was lost or double-counted.
	total := 0.0
	for _, o := range []string{"hit", "hit_pattern", "hit_flight", "miss", "uncacheable", "bypass"} {
		total += reg.Value(diagcache.MetricRequests, "outcome", o)
	}
	if total != goroutines*perG {
		t.Fatalf("outcome counters sum to %v, want %d", total, goroutines*perG)
	}
	for _, o := range []string{"uncacheable", "bypass"} {
		if n := reg.Value(diagcache.MetricRequests, "outcome", o); n != 0 {
			t.Fatalf("outcome %q = %v, want 0", o, n)
		}
	}
}

// TestCacheEvictionChurn hammers a two-entry cache with six distinct
// patterns from many goroutines: permanent eviction pressure, constant
// rebuild races. Every response must still match the uncached serial
// baseline byte for byte, the capacity bound must hold, and the outcome
// accounting must stay exact.
func TestCacheEvictionChurn(t *testing.T) {
	// Six pairwise pattern-distinct queries (the pattern key is blind to
	// table names and constants, so distinctness must be structural: table
	// counts, join shapes, selection rows, nesting).
	queries := []string{
		"SELECT L.drinker FROM Likes L",
		"SELECT L.drinker FROM Likes L WHERE L.beer = 'ipa'",
		"SELECT S.bar FROM Serves S, Likes L WHERE S.drink = L.drink",
		"SELECT F.bar FROM Frequents F, Likes L WHERE F.person = L.person AND L.drink = 'mead'",
		corpus.Fig3QSome,
		corpus.Fig3QOnly,
	}

	// Serial baseline from a cache-less server: the ground truth every
	// churned response must reproduce.
	base := New(Config{DefaultVerify: queryvis.VerifyDegrade, Metrics: telemetry.NewRegistry()})
	want := make(map[string]diagramResponse, len(queries))
	for _, sql := range queries {
		st, _, dr := serveDirect(t, base, sql, "degrade")
		if st != http.StatusOK {
			t.Fatalf("baseline %q: status %d", sql, st)
		}
		want[sql] = dr
	}

	reg := telemetry.NewRegistry()
	cache := diagcache.New(diagcache.Config{
		MaxEntries: 2,
		Shards:     1,
		MaxBytes:   -1, // entry-count pressure only; bytes unbounded
		Metrics:    reg,
	})
	srv := New(Config{
		Cache:         cache,
		DefaultVerify: queryvis.VerifyDegrade,
		Metrics:       telemetry.NewRegistry(),
	})

	const goroutines, perG = 8, 30
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				sql := queries[(13*g+i)%len(queries)]
				st, _, dr := serveDirect(t, srv, sql, "degrade")
				if st != http.StatusOK {
					t.Errorf("goroutine %d request %d: status %d", g, i, st)
					return
				}
				if !reflect.DeepEqual(dr, want[sql]) {
					t.Errorf("churned response diverged from baseline for %.40q:\nwant %+v\n got %+v", sql, want[sql], dr)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	if t.Failed() {
		return
	}

	st := cache.Stats()
	if st.Entries > 2 {
		t.Fatalf("cache holds %d entries, bound is 2", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("six patterns through two slots produced no evictions")
	}
	total := 0.0
	for _, o := range []string{"hit", "hit_pattern", "hit_flight", "miss", "uncacheable", "bypass"} {
		total += reg.Value(diagcache.MetricRequests, "outcome", o)
	}
	if total != goroutines*perG {
		t.Fatalf("outcome counters sum to %v, want %d", total, goroutines*perG)
	}
	if st.Hits+st.Misses != goroutines*perG {
		t.Fatalf("hits %d + misses %d != %d requests", st.Hits, st.Misses, goroutines*perG)
	}
}
