package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	queryvis "repro"
	"repro/internal/faults"
	"repro/internal/workerpool"
)

// Category classifies every non-200 response into a machine-readable
// error taxonomy. Clients branch on the category, not the message.
type Category string

const (
	// CatBadRequest: the request envelope is wrong — malformed JSON,
	// unknown schema name, unsupported format field. HTTP 400.
	CatBadRequest Category = "bad_request"
	// CatTooLarge: the request body exceeded the configured size cap.
	// HTTP 413.
	CatTooLarge Category = "too_large"
	// CatParse: the SQL text does not parse in the supported fragment.
	// HTTP 422.
	CatParse Category = "parse"
	// CatSemantic: the SQL parsed but failed resolution, TRC conversion,
	// or diagram construction (unknown table, ambiguous column, predicate
	// joining unrelated blocks, ...). HTTP 422.
	CatSemantic Category = "semantic"
	// CatLimit: a resource limit was exceeded; the Limit field names it.
	// HTTP 422.
	CatLimit Category = "limit"
	// CatTimeout: the per-request deadline expired mid-pipeline. HTTP 504.
	CatTimeout Category = "timeout"
	// CatCanceled: the client went away and the pipeline stopped. HTTP
	// 499 (nginx convention; Go has no constant for it).
	CatCanceled Category = "canceled"
	// CatOverloaded: the concurrency limiter shed this request; retry
	// after the Retry-After header. HTTP 429.
	CatOverloaded Category = "overloaded"
	// CatInternal: an internal invariant violation (contained panic) or
	// injected fault. HTTP 500.
	CatInternal Category = "internal"
	// CatVerifyFailed: a verify=strict request whose diagram could not be
	// proven correct (mismatch, ambiguity, budget exhaustion, or an
	// internal verification fault). The SQL itself was fine — retry with
	// verify=degrade to get the best servable artifact. HTTP 500.
	CatVerifyFailed Category = "verify_failed"
	// CatWorkerCrashed: under process isolation the worker serving this
	// request died (crash, OOM kill, garbage on its pipe) and so did the
	// one transparent retry. The daemon itself is healthy and has already
	// respawned the workers; the request is safe to retry. HTTP 503.
	CatWorkerCrashed Category = "worker_crashed"
)

// statusCanceled is nginx's non-standard 499 "client closed request";
// the client is gone, so the code is for logs and tests only.
const statusCanceled = 499

// apiError is the wire form of one error.
type apiError struct {
	Category Category `json:"category"`
	Message  string   `json:"message"`
	// Limit names the exceeded bound for CatLimit (e.g.
	// "max_nesting_depth").
	Limit string `json:"limit,omitempty"`
	// Stage names the pipeline stage for CatParse/CatSemantic/CatInternal
	// when known (e.g. "resolve").
	Stage string `json:"stage,omitempty"`
}

type errorBody struct {
	Error apiError `json:"error"`
}

// classify maps a pipeline error to its HTTP status and wire form. The
// order matters: limit and context errors are checked before stage
// wrapping so that, e.g., a deadline that expires inside the resolve
// stage still reports as a timeout.
func classify(err error) (int, apiError) {
	var le *queryvis.LimitError
	if errors.As(err, &le) {
		return http.StatusUnprocessableEntity, apiError{
			Category: CatLimit, Message: err.Error(), Limit: le.Limit,
		}
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, apiError{
			Category: CatTimeout, Message: "request deadline exceeded",
		}
	}
	if errors.Is(err, context.Canceled) {
		return statusCanceled, apiError{
			Category: CatCanceled, Message: "request canceled",
		}
	}
	var ve *queryvis.VerifyError
	if errors.As(err, &ve) {
		return http.StatusInternalServerError, apiError{
			Category: CatVerifyFailed,
			Message:  err.Error(),
			Stage:    queryvis.StageVerify,
		}
	}
	var ie *queryvis.InternalError
	if errors.As(err, &ie) {
		// The panic value and stack stay server-side; the body only admits
		// the invariant violation happened.
		return http.StatusInternalServerError, apiError{
			Category: CatInternal, Message: "internal error", Stage: ie.Stage,
		}
	}
	if errors.Is(err, faults.ErrInjected) {
		se := &queryvis.StageError{}
		stage := ""
		if errors.As(err, &se) {
			stage = se.Stage
		}
		return http.StatusInternalServerError, apiError{
			Category: CatInternal, Message: err.Error(), Stage: stage,
		}
	}
	var we *workerpool.WorkerError
	if errors.As(err, &we) {
		if we.Kind == workerpool.KindTimeout {
			return http.StatusGatewayTimeout, apiError{
				Category: CatTimeout,
				Message:  "worker overran the request deadline and was killed",
				Stage:    "worker",
			}
		}
		return http.StatusServiceUnavailable, apiError{
			Category: CatWorkerCrashed,
			Message: fmt.Sprintf("worker %s; retried once on a fresh worker without success — safe to retry",
				we.Kind),
			Stage: "worker",
		}
	}
	if errors.Is(err, workerpool.ErrPoolClosed) {
		return http.StatusServiceUnavailable, apiError{
			Category: CatOverloaded, Message: "server is draining; retry against a healthy instance",
		}
	}
	var se *queryvis.StageError
	if errors.As(err, &se) {
		cat := CatSemantic
		if se.Stage == queryvis.StageParse {
			cat = CatParse
		}
		return http.StatusUnprocessableEntity, apiError{
			Category: cat, Message: err.Error(), Stage: se.Stage,
		}
	}
	return http.StatusInternalServerError, apiError{
		Category: CatInternal, Message: err.Error(),
	}
}

// writeError emits the JSON error body for err.
func writeError(w http.ResponseWriter, err error) {
	status, ae := classify(err)
	writeAPIError(w, status, ae)
}

func writeAPIError(w http.ResponseWriter, status int, ae apiError) {
	// Every error response funnels through here; note the category on the
	// instrument wrapper's recorder so it lands in the error counters.
	if rec, ok := w.(*statusRecorder); ok {
		rec.category = ae.Category
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: ae})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
