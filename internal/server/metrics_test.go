package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	queryvis "repro"
	"repro/internal/corpus"
	"repro/internal/faults"
	"repro/internal/quarantine"
	"repro/internal/telemetry"
)

// newMetricsServer is newTestServer with an externally readable registry.
func newMetricsServer(t *testing.T, cfg Config) (*httptest.Server, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Metrics = reg
	return newTestServer(t, cfg), reg
}

// errorCategorySum totals the error counters across the whole taxonomy.
func errorCategorySum(reg *telemetry.Registry) float64 {
	var sum float64
	for _, cat := range errorCategories {
		sum += reg.Value(mErrors, "category", string(cat))
	}
	return sum
}

// verifyOutcomeSum totals the verdict counters across all outcomes.
func verifyOutcomeSum(reg *telemetry.Registry) float64 {
	var sum float64
	for _, outcome := range verifyOutcomes {
		sum += reg.Value(mVerify, "status", outcome)
	}
	return sum
}

// TestErrorCategoryCounters drives one request into every category of
// the error taxonomy and asserts it increments exactly that category's
// counter — one error response, one series, nothing else.
func TestErrorCategoryCounters(t *testing.T) {
	fig1 := diagramRequest{SQL: corpus.Fig1UniqueSet, Schema: "beers"}
	cases := []struct {
		cat  Category
		cfg  Config
		send func(t *testing.T, ts *httptest.Server)
	}{
		{CatBadRequest, Config{}, func(t *testing.T, ts *httptest.Server) {
			post(t, ts.Client(), ts.URL+"/v1/diagram", `{"sql": `, nil)
		}},
		{CatTooLarge, Config{MaxBodyBytes: 64}, func(t *testing.T, ts *httptest.Server) {
			post(t, ts.Client(), ts.URL+"/v1/diagram", diagramRequest{
				SQL:    "SELECT x.a FROM T x WHERE " + strings.Repeat("x.a = 1 AND ", 50) + "x.a = 1",
				Schema: "beers",
			}, nil)
		}},
		{CatParse, Config{}, func(t *testing.T, ts *httptest.Server) {
			post(t, ts.Client(), ts.URL+"/v1/diagram", diagramRequest{
				SQL: "SELEKT nope", Schema: "beers",
			}, nil)
		}},
		{CatSemantic, Config{}, func(t *testing.T, ts *httptest.Server) {
			post(t, ts.Client(), ts.URL+"/v1/diagram", diagramRequest{
				SQL: "SELECT x.a FROM NoSuchTable x", Schema: "beers",
			}, nil)
		}},
		{CatLimit, Config{Limits: queryvis.Limits{MaxNestingDepth: 1}}, func(t *testing.T, ts *httptest.Server) {
			post(t, ts.Client(), ts.URL+"/v1/diagram", fig1, nil)
		}},
		{CatTimeout, Config{RequestTimeout: 5 * time.Millisecond}, func(t *testing.T, ts *httptest.Server) {
			seed := findSeed(t, func(p *faults.Plan) bool {
				f := p.Faults[faults.StageParse]
				return f.Action == faults.ActDelay && f.Delay >= 20*time.Millisecond
			})
			post(t, ts.Client(), ts.URL+"/v1/diagram", fig1,
				map[string]string{"X-Fault-Seed": fmt.Sprint(seed)})
		}},
		{CatInternal, Config{}, func(t *testing.T, ts *httptest.Server) {
			seed := findSeed(t, func(p *faults.Plan) bool {
				return p.Faults[faults.StageParse].Action == faults.ActPanic
			})
			post(t, ts.Client(), ts.URL+"/v1/diagram", fig1,
				map[string]string{"X-Fault-Seed": fmt.Sprint(seed)})
		}},
		{CatVerifyFailed, Config{}, func(t *testing.T, ts *httptest.Server) {
			seed := verifyOnlySeed(t)
			postFull(t, ts.Client(), ts.URL+"/v1/diagram",
				diagramReq(corpus.Fig1UniqueSet, "strict"),
				map[string]string{"X-Fault-Seed": fmt.Sprint(seed)})
		}},
	}
	for _, tc := range cases {
		t.Run(string(tc.cat), func(t *testing.T) {
			ts, reg := newMetricsServer(t, tc.cfg)
			tc.send(t, ts)
			if got := reg.Value(mErrors, "category", string(tc.cat)); got != 1 {
				t.Errorf("errors_total{category=%q} = %v, want 1", tc.cat, got)
			}
			if sum := errorCategorySum(reg); sum != 1 {
				t.Errorf("error counters sum = %v, want exactly 1", sum)
			}
		})
	}

	// canceled (499): the context is dead before the handler runs, so the
	// request never leaves the client — drive the handler directly.
	t.Run(string(CatCanceled), func(t *testing.T) {
		reg := telemetry.NewRegistry()
		s := New(Config{Metrics: reg})
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var buf bytes.Buffer
		_ = json.NewEncoder(&buf).Encode(fig1)
		req := httptest.NewRequest(http.MethodPost, "/v1/diagram", &buf).WithContext(ctx)
		s.ServeHTTP(httptest.NewRecorder(), req)
		if got := reg.Value(mErrors, "category", string(CatCanceled)); got != 1 {
			t.Errorf("errors_total{category=canceled} = %v, want 1", got)
		}
		if sum := errorCategorySum(reg); sum != 1 {
			t.Errorf("error counters sum = %v, want exactly 1", sum)
		}
	})

	// overloaded (429): one worker held busy, the second request shed.
	t.Run(string(CatOverloaded), func(t *testing.T) {
		seed := findSeed(t, func(p *faults.Plan) bool {
			f := p.Faults[faults.StageParse]
			return f.Action == faults.ActDelay && f.Delay >= 40*time.Millisecond
		})
		ts, reg := newMetricsServer(t, Config{MaxConcurrent: 1})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts.Client(), ts.URL+"/v1/diagram", fig1,
				map[string]string{"X-Fault-Seed": fmt.Sprint(seed)})
		}()
		srv := ts.Config.Handler.(*Server)
		for i := 0; srv.InFlight() == 0 && i < 500; i++ {
			time.Sleep(time.Millisecond)
		}
		st, _ := post(t, ts.Client(), ts.URL+"/v1/diagram", fig1, nil)
		wg.Wait()
		if st != http.StatusTooManyRequests {
			t.Fatalf("status = %d, want 429", st)
		}
		if got := reg.Value(mErrors, "category", string(CatOverloaded)); got != 1 {
			t.Errorf("errors_total{category=overloaded} = %v, want 1", got)
		}
		if sum := errorCategorySum(reg); sum != 1 {
			t.Errorf("error counters sum = %v, want exactly 1", sum)
		}
		if got := reg.Value(mShed); got != 1 {
			t.Errorf("shed = %v, want 1", got)
		}
	})
}

// TestVerifyOutcomeCounters asserts each reachable verification verdict
// increments exactly one outcome counter. (Mismatch and ambiguity need a
// wrong diagram, which no deterministic fault plan can fabricate over
// HTTP; the facade-level verify tests cover those verdicts.)
func TestVerifyOutcomeCounters(t *testing.T) {
	t.Run("verified", func(t *testing.T) {
		ts, reg := newMetricsServer(t, Config{})
		postFull(t, ts.Client(), ts.URL+"/v1/diagram", diagramReq(corpus.Fig1UniqueSet, "degrade"), nil)
		if got := reg.Value(mVerify, "status", queryvis.VerifyStatusVerified); got != 1 {
			t.Errorf("verify_total{status=verified} = %v, want 1", got)
		}
		if sum := verifyOutcomeSum(reg); sum != 1 {
			t.Errorf("verify counters sum = %v, want exactly 1", sum)
		}
	})

	t.Run("off_counts_nothing", func(t *testing.T) {
		ts, reg := newMetricsServer(t, Config{})
		postFull(t, ts.Client(), ts.URL+"/v1/diagram", diagramReq(corpus.Fig1UniqueSet, "off"), nil)
		if sum := verifyOutcomeSum(reg); sum != 0 {
			t.Errorf("verify counters sum = %v, want 0 for verify=off", sum)
		}
	})

	t.Run("budget_exhausted", func(t *testing.T) {
		ts, reg := newMetricsServer(t, Config{VerifyBudget: 10_000})
		postFull(t, ts.Client(), ts.URL+"/v1/diagram", diagramReq(wideBeersSQL(7), "degrade"), nil)
		if got := reg.Value(mVerify, "status", queryvis.VerifyStatusBudget); got != 1 {
			t.Errorf("verify_total{status=budget_exhausted} = %v, want 1", got)
		}
		if sum := verifyOutcomeSum(reg); sum != 1 {
			t.Errorf("verify counters sum = %v, want exactly 1", sum)
		}
	})

	t.Run("error", func(t *testing.T) {
		ts, reg := newMetricsServer(t, Config{})
		seed := verifyOnlySeed(t)
		postFull(t, ts.Client(), ts.URL+"/v1/diagram", diagramReq(corpus.Fig1UniqueSet, "degrade"),
			map[string]string{"X-Fault-Seed": fmt.Sprint(seed)})
		if got := reg.Value(mVerify, "status", queryvis.VerifyStatusError); got != 1 {
			t.Errorf("verify_total{status=error} = %v, want 1", got)
		}
		if sum := verifyOutcomeSum(reg); sum != 1 {
			t.Errorf("verify counters sum = %v, want exactly 1", sum)
		}
	})

	t.Run("skipped", func(t *testing.T) {
		ts, reg := newMetricsServer(t, Config{
			VerifyBudget:     10_000,
			BreakerThreshold: 1,
			BreakerCooldown:  time.Hour,
		})
		// One blowout trips the breaker; the next degrade request skips.
		postFull(t, ts.Client(), ts.URL+"/v1/diagram", diagramReq(wideBeersSQL(7), "degrade"), nil)
		postFull(t, ts.Client(), ts.URL+"/v1/diagram", diagramReq(corpus.Fig1UniqueSet, "degrade"), nil)
		if got := reg.Value(mVerify, "status", queryvis.VerifyStatusSkipped); got != 1 {
			t.Errorf("verify_total{status=skipped} = %v, want 1", got)
		}
		if sum := verifyOutcomeSum(reg); sum != 2 { // blowout + skip
			t.Errorf("verify counters sum = %v, want exactly 2", sum)
		}
	})
}

// TestMetricsEndpoint scrapes /v1/metrics after one diagram request and
// checks the exposition covers the whole surface: all seven stages,
// every error category, the verify outcomes, breaker and quarantine
// gauges, and non-zero series for the request that was just served.
func TestMetricsEndpoint(t *testing.T) {
	q, err := quarantine.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newMetricsServer(t, Config{Quarantine: q})
	postFull(t, ts.Client(), ts.URL+"/v1/diagram", diagramReq(corpus.Fig1UniqueSet, "degrade"), nil)

	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	for _, stage := range stageNames {
		if !strings.Contains(body, fmt.Sprintf(`queryvis_stage_duration_seconds_count{stage=%q}`, stage)) {
			t.Errorf("exposition missing stage histogram for %q", stage)
		}
	}
	for _, cat := range errorCategories {
		if !strings.Contains(body, fmt.Sprintf(`queryvis_http_errors_total{category=%q}`, cat)) {
			t.Errorf("exposition missing error category %q", cat)
		}
	}
	for _, outcome := range verifyOutcomes {
		if !strings.Contains(body, fmt.Sprintf(`queryvis_verify_total{status=%q}`, outcome)) {
			t.Errorf("exposition missing verify outcome %q", outcome)
		}
	}
	for _, want := range []string{
		"queryvis_breaker_state 0",
		"queryvis_breaker_trips_total 0",
		"queryvis_quarantine_entries 0",
		"queryvis_quarantine_bytes 0",
		`queryvis_http_requests_total{code="200",route="/v1/diagram"} 1`,
		`queryvis_verify_total{status="verified"} 1`,
		`queryvis_stage_duration_seconds_count{stage="parse"} 1`,
		`queryvis_stage_spans_total{stage="parse"} 1`,
		`queryvis_hop_duration_seconds_count{hop="instance"} 1`,
		`queryvis_hop_duration_seconds_count{hop="dispatch"} 0`,
		`queryvis_hop_duration_seconds_count{hop="worker"} 0`,
		"queryvis_traces_total 1",
		"queryvis_trace_ring_entries 1",
		"queryvis_http_served_total 1",
		"queryvis_http_in_flight 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsDisabled: DisableTelemetry removes /v1/metrics and the
// per-request instrumentation, but healthz keeps its load numbers.
func TestMetricsDisabled(t *testing.T) {
	ts, reg := newMetricsServer(t, Config{DisableTelemetry: true})
	st, _ := post(t, ts.Client(), ts.URL+"/v1/diagram",
		diagramRequest{SQL: corpus.Fig1UniqueSet, Schema: "beers"}, nil)
	if st != http.StatusOK {
		t.Fatalf("diagram status = %d, want 200", st)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/metrics status = %d, want 404 when telemetry is disabled", resp.StatusCode)
	}
	if got := reg.Value(mRequests, "route", "/v1/diagram", "code", "200"); got != 0 {
		t.Fatalf("route counter = %v with telemetry disabled, want 0", got)
	}

	hz, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var h healthzResponse
	if err := json.NewDecoder(hz.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Served != 1 || h.Status != "ok" {
		t.Fatalf("healthz = %+v, want served=1 with telemetry disabled", h)
	}
}

// TestRequestIDEcho: a generated ID comes back on X-Request-ID; a
// caller-supplied one is propagated verbatim.
func TestRequestIDEcho(t *testing.T) {
	ts, _ := newMetricsServer(t, Config{})
	_, hdr, _ := postFull(t, ts.Client(), ts.URL+"/v1/diagram",
		diagramReq(corpus.Fig1UniqueSet, "off"), nil)
	if id := hdr.Get("X-Request-ID"); len(id) != 16 {
		t.Fatalf("generated X-Request-ID = %q, want 16 hex chars", id)
	}
	_, hdr, _ = postFull(t, ts.Client(), ts.URL+"/v1/diagram",
		diagramReq(corpus.Fig1UniqueSet, "off"),
		map[string]string{"X-Request-ID": "caller-chosen-id"})
	if id := hdr.Get("X-Request-ID"); id != "caller-chosen-id" {
		t.Fatalf("echoed X-Request-ID = %q, want caller's", id)
	}
}

// TestHealthzMatchesMetrics cross-checks the two endpoints after mixed
// traffic: the same registry backs both, so every shared number must
// agree exactly.
func TestHealthzMatchesMetrics(t *testing.T) {
	ts, reg := newMetricsServer(t, Config{})
	for i := 0; i < 3; i++ {
		postFull(t, ts.Client(), ts.URL+"/v1/diagram", diagramReq(corpus.Fig1UniqueSet, "off"), nil)
	}
	post(t, ts.Client(), ts.URL+"/v1/diagram", diagramRequest{SQL: "SELEKT", Schema: "beers"}, nil)

	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if got := reg.Value(mServed); float64(h.Served) != got {
		t.Errorf("healthz served = %d, registry = %v", h.Served, got)
	}
	if got := reg.Value(mShed); float64(h.Shed) != got {
		t.Errorf("healthz shed = %d, registry = %v", h.Shed, got)
	}
	if got := reg.Value(mBreakerTrips); float64(h.BreakerTrips) != got {
		t.Errorf("healthz breaker trips = %d, registry = %v", h.BreakerTrips, got)
	}
	if h.BreakerState != breakerStateName(int(reg.Value(mBreakerState))) {
		t.Errorf("healthz breaker state %q disagrees with registry", h.BreakerState)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer: the request logger
// writes from server goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowQueryLog: a request over the threshold produces one WARN line
// with the scrubbed SQL — string literals must not survive into logs.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	log := slog.New(slog.NewTextHandler(&buf, nil))
	seed := findSeed(t, func(p *faults.Plan) bool {
		f := p.Faults[faults.StageParse]
		return f.Action == faults.ActDelay && f.Delay >= 20*time.Millisecond
	})
	ts, reg := newMetricsServer(t, Config{
		Logger:             log,
		SlowQueryThreshold: time.Millisecond,
	})
	sql := `SELECT L.drinker FROM Likes L WHERE L.beer = 'SecretBrew'`
	post(t, ts.Client(), ts.URL+"/v1/diagram", diagramRequest{SQL: sql, Schema: "beers"},
		map[string]string{"X-Fault-Seed": fmt.Sprint(seed)})

	out := buf.String()
	if !strings.Contains(out, "slow query") {
		t.Fatalf("no slow-query line in log:\n%s", out)
	}
	if strings.Contains(out, "SecretBrew") {
		t.Fatalf("string literal leaked into the slow-query log:\n%s", out)
	}
	if !strings.Contains(out, "'s1'") {
		t.Fatalf("scrubbed SQL missing from the slow-query log:\n%s", out)
	}
	if got := reg.Value(mSlowQueries); got != 1 {
		t.Fatalf("slow_queries_total = %v, want 1", got)
	}
}
