package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/workerpool"
)

// poolDispatch builds the process-isolated handler for one endpoint: the
// request body is read (under the parent's size cap), shipped to an idle
// worker over the pool's framed pipe protocol, and the worker's verbatim
// HTTP response — status, headers, body — is copied back to the client.
// The parent keeps the envelope guards (method check, load shedding,
// deadline, body cap, panic boundary, instrumentation) while everything
// that parses or executes untrusted SQL happens inside a sacrificial
// child.
func (s *Server) poolDispatch(endpoint string) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return &requestError{http.StatusRequestEntityTooLarge, apiError{
					Category: CatTooLarge,
					Message:  fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
				}}
			}
			return err
		}

		req := workerpool.Request{
			Endpoint: endpoint,
			Body:     body,
			Header:   map[string]string{},
		}
		// Allow-listed header forwarding: the request ID for log
		// correlation across the process boundary, and — only on listeners
		// that opted into fault injection — the chaos headers. The ID comes
		// from the context (instrument minted one when the client sent
		// none), falling back to the raw header for untraced listeners.
		rid := telemetry.RequestIDFrom(r.Context())
		if rid == "" {
			rid = r.Header.Get("X-Request-ID")
		}
		if rid != "" {
			req.Header["X-Request-ID"] = rid
		}
		if s.cfg.AllowFaultInjection {
			for _, h := range []string{"X-Fault-Seed", faults.HeaderWorkerFault} {
				if v := r.Header.Get(h); v != "" {
					req.Header[h] = v
				}
			}
		}
		// A caller-advertised deadline budget rides the frame re-stamped
		// with what remains — guarded() already shrank this request's
		// context to it, and dispatch derives the worker kill-timer from
		// the context, so the header here is the honest audit trail of
		// what the worker was given, not the enforcement mechanism.
		if _, ok := telemetry.ParseDeadlineMS(r.Header.Get(telemetry.DeadlineHeader)); ok {
			if dl, hasDL := r.Context().Deadline(); hasDL {
				req.Header[telemetry.DeadlineHeader] = telemetry.FormatDeadlineMS(time.Until(dl))
			}
		}

		// The dispatch span brackets queueing + the frame round trip; its
		// ID rides to the worker in the trace header so the worker's span
		// subtree parents under it. The pool stamps the same header map
		// onto every passenger of a coalesced batch frame, so followers
		// carry their own trace context, not the leader's.
		tr := telemetry.TracerFrom(r.Context())
		sp := tr.Start(spanDispatch)
		if tr != nil {
			tc := telemetry.TraceContext{TraceID: tr.TraceID(), SpanID: sp.ID(), Sampled: true}
			req.Header[telemetry.TraceHeader] = tc.Header()
		}

		// Route by pattern affinity: isomorphic requests land on the same
		// worker, concentrating its private diagram cache (see affinity.go).
		bodyHash, affKey := s.aff.key(body)
		resp, err := s.cfg.Pool.DoAffinity(r.Context(), req, affKey)
		sp.End()
		if err != nil {
			return err
		}
		// Graft the worker-side spans (its "worker" root plus the pipeline
		// stages) into this request's trace.
		tr.Merge(resp.Spans)
		s.aff.learn(bodyHash, resp.Header[headerPattern])
		for k, v := range resp.Header {
			// The recorder recomputes framing; a stale worker-side length
			// would corrupt the reply.
			if k == "Content-Length" {
				continue
			}
			w.Header().Set(k, v)
		}
		if resp.Status >= 400 {
			// Surface the worker's error category into this process's error
			// counters, so /v1/metrics tells one story regardless of where
			// the request ran.
			var eb errorBody
			if json.Unmarshal(resp.Body, &eb) == nil && eb.Error.Category != "" {
				if rec, ok := w.(*statusRecorder); ok {
					rec.category = eb.Error.Category
				}
			}
		}
		w.WriteHeader(resp.Status)
		_, _ = w.Write(resp.Body)
		return nil
	}
}
