package server

import (
	"net/http"
	"strconv"
	"time"

	queryvis "repro"
	"repro/internal/quarantine"
	"repro/internal/telemetry"
)

// Metric family names served on GET /v1/metrics. The registry is the
// single source of truth for every operational number the service
// reports: /v1/healthz reads the same series, so the two endpoints can
// never disagree.
const (
	mRequests      = "queryvis_http_requests_total"
	mErrors        = "queryvis_http_errors_total"
	mInFlight      = "queryvis_http_in_flight"
	mServed        = "queryvis_http_served_total"
	mShed          = "queryvis_http_shed_total"
	mDuration      = "queryvis_http_request_duration_seconds"
	mVerify        = "queryvis_verify_total"
	mBreakerState  = "queryvis_breaker_state"
	mBreakerTrips  = "queryvis_breaker_trips_total"
	mBreakerStreak = "queryvis_breaker_streak"
	mQuarEntries   = "queryvis_quarantine_entries"
	mQuarBytes     = "queryvis_quarantine_bytes"
	mStageDur      = "queryvis_stage_duration_seconds"
	mStageSpans    = "queryvis_stage_spans_total"
	mSlowQueries   = "queryvis_slow_queries_total"
	mHopDur        = "queryvis_hop_duration_seconds"
	mTraces        = "queryvis_traces_total"
	mTraceRing     = "queryvis_trace_ring_entries"
)

const (
	helpRequests = "Total HTTP requests by route and status code."
	helpErrors   = "Error responses by category."
	helpDuration = "End-to-end request latency by route."
	helpVerify   = "Verification verdicts by status."
	helpStageDur = "Pipeline stage latency by stage."
	helpSpans    = "Pipeline stage spans entered by stage."
	helpHopDur   = "Per-hop latency by hop (instance handler, pool dispatch, worker)."
	helpTraces   = "Completed request traces recorded to the trace ring."
	helpTraceLen = "Traces currently held in the bounded trace ring."
)

// stageNames is the full pipeline taxonomy; every stage histogram is
// pre-registered so /v1/metrics covers all seven stages from the first
// scrape, observed or not.
var stageNames = []string{
	queryvis.StageParse, queryvis.StageResolve, queryvis.StageConvert,
	queryvis.StageTree, queryvis.StageBuild, queryvis.StageVerify,
	queryvis.StageRender,
}

// stageSet answers "is this span a pipeline stage?" — the trace also
// carries hop spans (instance/dispatch/worker) and per-item batch spans,
// which must not pollute the stage families.
var stageSet = func() map[string]bool {
	m := make(map[string]bool, len(stageNames))
	for _, st := range stageNames {
		m[st] = true
	}
	return m
}()

// hopNames are the hop spans this process's trace can carry; each gets a
// pre-registered latency histogram so per-hop attribution appears in the
// exposition from the first scrape. (The router's own hop is counted in
// the router's registry, not here.)
var hopNames = []string{spanInstance, spanDispatch, spanWorker}

// Span names for the non-stage hops of a trace.
const (
	spanInstance = "instance"
	spanDispatch = "dispatch"
	spanWorker   = "worker"
	spanItem     = "item"
)

// errorCategories mirrors the taxonomy in errors.go.
var errorCategories = []Category{
	CatBadRequest, CatTooLarge, CatParse, CatSemantic, CatLimit,
	CatTimeout, CatCanceled, CatOverloaded, CatInternal, CatVerifyFailed,
	CatWorkerCrashed,
}

// verifyOutcomes are the verdicts counted by queryvis_verify_total.
// "off" is absent by design: an unrequested verification is not an
// outcome.
var verifyOutcomes = []string{
	queryvis.VerifyStatusVerified, queryvis.VerifyStatusSkipped,
	queryvis.VerifyStatusMismatch, queryvis.VerifyStatusAmbiguous,
	queryvis.VerifyStatusBudget, queryvis.VerifyStatusTimeout,
	queryvis.VerifyStatusError,
}

// serverMetrics owns the registry and the hot-path instrument handles.
// The load-tracking gauges live here — not as separate atomics on Server
// — so healthz and the exposition read the same storage.
type serverMetrics struct {
	reg         *telemetry.Registry
	inFlight    *telemetry.Gauge
	served      *telemetry.Counter
	shed        *telemetry.Counter
	slowQueries *telemetry.Counter
}

// initMetrics builds the metric surface: load gauges, pre-registered
// per-stage/per-category/per-outcome families (so zero-valued series
// still appear in the exposition), and gauge funcs reading the breaker
// and quarantine through the same snapshots healthz historically used.
func (s *Server) initMetrics(reg *telemetry.Registry) {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &serverMetrics{
		reg:      reg,
		inFlight: reg.Gauge(mInFlight, "Requests currently being served."),
		served:   reg.Counter(mServed, "Requests admitted past the load shedder."),
		shed:     reg.Counter(mShed, "Requests shed with 429 by the concurrency limiter."),
		slowQueries: reg.Counter(mSlowQueries,
			"Requests slower than the slow-query threshold."),
	}
	for _, st := range stageNames {
		reg.Histogram(mStageDur, helpStageDur, nil, "stage", st)
		reg.Counter(mStageSpans, helpSpans, "stage", st)
	}
	for _, hop := range hopNames {
		reg.Histogram(mHopDur, helpHopDur, nil, "hop", hop)
	}
	reg.Counter(mTraces, helpTraces)
	reg.GaugeFunc(mTraceRing, helpTraceLen,
		func() float64 { return float64(s.traces.Len()) })
	for _, cat := range errorCategories {
		reg.Counter(mErrors, helpErrors, "category", string(cat))
	}
	for _, outcome := range verifyOutcomes {
		reg.Counter(mVerify, helpVerify, "status", outcome)
	}
	reg.GaugeFunc(mBreakerState,
		"Circuit breaker state (0 closed, 1 half-open, 2 open).",
		func() float64 {
			state, _, _ := s.breaker.snapshot()
			return float64(breakerStateValue(state))
		})
	reg.GaugeFunc(mBreakerTrips, "Times the circuit breaker has tripped open.",
		func() float64 {
			_, trips, _ := s.breaker.snapshot()
			return float64(trips)
		})
	reg.GaugeFunc(mBreakerStreak, "Current consecutive verification cost blowouts.",
		func() float64 {
			_, _, streak := s.breaker.snapshot()
			return float64(streak)
		})
	if s.cfg.Quarantine != nil {
		reg.GaugeFunc(mQuarEntries, "Entries in the quarantine corpus.",
			func() float64 { return float64(s.quarantineStats().Entries) })
		reg.GaugeFunc(mQuarBytes, "Bytes in the quarantine corpus.",
			func() float64 { return float64(s.quarantineStats().Bytes) })
	}
	s.metrics = m
}

// quarantineStats snapshots the corpus, absorbing errors into zeros —
// the exposition writer is no place to fail a scrape.
func (s *Server) quarantineStats() quarantine.Stats {
	st, _ := s.cfg.Quarantine.Stats()
	return st
}

// breakerStateValue maps the breaker's state name onto a stable gauge
// encoding.
func breakerStateValue(state string) int {
	switch state {
	case "half_open":
		return 1
	case "open":
		return 2
	}
	return 0
}

// breakerStateName inverts breakerStateValue for healthz, which reads
// the state back out of the registry.
func breakerStateName(v int) string {
	switch v {
	case 1:
		return "half_open"
	case 2:
		return "open"
	}
	return "closed"
}

// Metrics exposes the registry, primarily so tests (the chaos suite in
// internal/faults) can cross-check counters against observed traffic.
func (s *Server) Metrics() *telemetry.Registry { return s.metrics.reg }

// statusRecorder captures what a handler wrote — status code, error
// category (recorded by writeAPIError), and the request's SQL (recorded
// by the query handlers for the slow-query log) — for the instrument
// wrapper to turn into series after the handler returns.
type statusRecorder struct {
	http.ResponseWriter
	status   int
	category Category
	sql      string
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// noteSQL stores the decoded query text on the recorder when one wraps
// the writer (it does not when telemetry is disabled).
func noteSQL(w http.ResponseWriter, sql string) {
	if rec, ok := w.(*statusRecorder); ok {
		rec.sql = sql
	}
}

// instrument wraps a route with per-request telemetry: request-ID
// generation and echo, a fresh tracer on the context (the pipeline's
// stage spans land there), and — after the handler returns — route/code
// counters, the route latency histogram, per-stage histograms fed from
// the trace, the slow-query log, and one structured request log line.
// With telemetry disabled it is the identity function.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if s.cfg.DisableTelemetry {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		started := time.Now()
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = telemetry.NewRequestID()
		}
		w.Header().Set("X-Request-ID", rid)

		// Join the distributed trace the upstream hop (router) started, or
		// start a new one. An unsampled inbound context still runs under a
		// tracer — the stage metrics need the spans — but stays out of the
		// trace ring.
		sampled := true
		var tr *telemetry.Tracer
		if tc, ok := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeader)); ok {
			sampled = tc.Sampled
			tr = telemetry.NewTracerForTrace(tc.TraceID, tc.SpanID)
		} else {
			tr = telemetry.NewTracerForTrace(telemetry.NewTraceID(), "")
		}
		w.Header().Set(telemetry.TraceIDHeader, tr.TraceID())
		root := tr.StartRoot(spanInstance)
		root.Annotate("route", route)

		ctx := telemetry.WithRequestID(telemetry.WithTracer(r.Context(), tr), rid)
		rec := &statusRecorder{ResponseWriter: w}

		h(rec, r.WithContext(ctx))

		root.End()
		elapsed := time.Since(started)
		code := rec.status
		if code == 0 {
			code = http.StatusOK
		}
		m := s.metrics
		m.reg.Counter(mRequests, helpRequests,
			"route", route, "code", strconv.Itoa(code)).Inc()
		if rec.category != "" {
			m.reg.Counter(mErrors, helpErrors, "category", string(rec.category)).Inc()
		}
		m.reg.Histogram(mDuration, helpDuration, nil, "route", route).
			Observe(elapsed.Seconds())
		spans := tr.Spans()
		for _, sp := range spans {
			switch {
			case stageSet[sp.Name]:
				m.reg.Counter(mStageSpans, helpSpans, "stage", sp.Name).Inc()
				m.reg.Histogram(mStageDur, helpStageDur, nil, "stage", sp.Name).
					Observe(sp.Duration.Seconds())
			case sp.Name == spanInstance || sp.Name == spanDispatch || sp.Name == spanWorker:
				m.reg.Histogram(mHopDur, helpHopDur, nil, "hop", sp.Name).
					Observe(sp.Duration.Seconds())
			}
		}
		if sampled {
			s.traces.Put(telemetry.TraceRecord{
				TraceID:   tr.TraceID(),
				RequestID: rid,
				Pattern:   rec.Header().Get(headerPattern),
				Start:     started,
				Duration:  elapsed,
				Spans:     spans,
			})
			m.reg.Counter(mTraces, helpTraces).Inc()
		}

		slow := s.cfg.SlowQueryThreshold > 0 && elapsed >= s.cfg.SlowQueryThreshold
		if slow {
			m.slowQueries.Inc()
		}
		if log := s.cfg.Logger; log != nil {
			attrs := []any{
				"request_id", rid,
				"trace_id", tr.TraceID(),
				"route", route,
				"code", code,
				"elapsed_ms", elapsed.Milliseconds(),
			}
			if rec.category != "" {
				attrs = append(attrs, "category", string(rec.category))
			}
			if slow {
				// Only the slow path pays for scrubbing; the SQL never reaches
				// a log line unscrubbed.
				attrs = append(attrs, "slow", true)
				if rec.sql != "" {
					attrs = append(attrs, "sql", quarantine.ScrubSQL(rec.sql))
				}
				attrs = append(attrs, "trace", "\n"+telemetry.FormatTree(spans))
				log.Warn("slow query", attrs...)
			} else {
				log.Info("request", attrs...)
			}
		}
	}
}

// recordVerifyOutcome counts one verification verdict.
func (s *Server) recordVerifyOutcome(status string) {
	if s.cfg.DisableTelemetry || status == "" || status == queryvis.VerifyStatusOff {
		return
	}
	s.metrics.reg.Counter(mVerify, helpVerify, "status", status).Inc()
}

// handleMetrics serves the Prometheus text exposition. With telemetry
// disabled the route does not exist.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.cfg.DisableTelemetry {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeAPIError(w, http.StatusMethodNotAllowed, apiError{
			Category: CatBadRequest, Message: "use GET",
		})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}
