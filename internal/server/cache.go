package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	queryvis "repro"
	"repro/internal/diagcache"
	"repro/internal/faults"
	"repro/internal/schema"
)

// This file is the server's cached diagram path: /v1/diagram and every
// /v1/diagrams:batch item funnel through serveDiagram, which consults
// the pattern-keyed cache (internal/diagcache) when one is configured
// and otherwise behaves exactly like the historical handler. The
// correctness rules are the cache's — only verified (or verify-off)
// non-degraded results are inserted — plus two server-level ones:
// fault-seeded requests bypass the cache in both directions, and the
// breaker/quarantine/verify-metric integrations fire for real builds
// only, never for hits.

// Response headers the cached path adds. X-QueryVis-Cache is "hit" or
// "miss" whenever a cache is configured and the request was eligible
// (absent when caching is off or the request bypassed it).
// X-QueryVis-Pattern carries the pattern-key hash when one is known, so
// the parent of a worker pool can route isomorphic requests to the same
// worker (see affinity.go).
const (
	headerCache   = "X-Queryvis-Cache"
	headerPattern = "X-Queryvis-Pattern"
)

// configFingerprint identifies the configuration an entry was proven
// under: the per-query limits, the verification budget, and the schema
// catalog. BindConfig flushes the cache when any of it changes.
func (s *Server) configFingerprint() string {
	names := append([]string(nil), schema.BuiltinNames()...)
	sort.Strings(names)
	return fmt.Sprintf("limits=%+v unlimited=%t budget=%d schemas=%v",
		s.cfg.Limits, s.cfg.Unlimited, s.cfg.VerifyBudget, names)
}

// cacheKey is the exact-text lookup key. Server schemas are built-in,
// so the name identifies the catalog entry; simplify is the only option
// that changes the artifact (format does not: entries carry all three
// renderings, and verify mode is handled by the cache's acceptance
// check, not the key).
func (s *Server) cacheKey(req *diagramRequest) string {
	flag := byte('0')
	if req.Simplify {
		flag = '1'
	}
	return req.Schema + "\x00" + string(flag) + "\x00" + req.SQL
}

// served is one fully determined diagram response: the JSON body plus
// the out-of-band headers the handler sets. Batch items reuse it with
// the headers folded into the item instead.
type served struct {
	resp         diagramResponse
	verifyStatus string // X-QueryVis-Verify-Status (pre-hide value)
	degraded     string // X-QueryVis-Degraded
	cache        string // X-QueryVis-Cache: "hit", "miss", or "" (ineligible)
	pattern      string // X-QueryVis-Pattern: pattern-key hash when known
}

func (sv *served) writeHeaders(w http.ResponseWriter) {
	if sv.verifyStatus != "" && sv.verifyStatus != queryvis.VerifyStatusOff {
		w.Header().Set("X-QueryVis-Verify-Status", sv.verifyStatus)
	}
	if sv.degraded != "" {
		w.Header().Set("X-QueryVis-Degraded", sv.degraded)
	}
	if sv.cache != "" {
		w.Header().Set(headerCache, sv.cache)
	}
	if sv.pattern != "" {
		w.Header().Set(headerPattern, sv.pattern)
	}
}

// serveDiagram resolves one validated diagram request into a response,
// through the cache when possible:
//
//   - cache off → the historical runVerified + render path;
//   - fault plan on the context → same, with the cache bypassed in both
//     directions (an injected fault must neither be masked by cached
//     bytes nor poison them);
//   - otherwise GetOrBuild: exact-text hit, pattern hit, singleflight
//     wait, or a verified build this caller leads. Uncacheable outcomes
//     (degraded, breaker-skipped, unkeyable) serve this caller's own
//     result and insert nothing.
func (s *Server) serveDiagram(ctx context.Context, req *diagramRequest, sch *schema.Schema, started time.Time) (*served, error) {
	if s.cache == nil {
		return s.serveUncached(ctx, req, sch, started, "")
	}
	if faults.FromContext(ctx) != nil {
		s.cache.NoteBypass()
		return s.serveUncached(ctx, req, sch, started, "")
	}
	requested, err := s.verifyMode(req)
	if err != nil {
		return nil, err
	}
	wantVerified := requested != queryvis.VerifyOff

	var (
		probeRes    *queryvis.Result
		probeFailed bool
		built       *queryvis.Result
	)
	probe := func(ctx context.Context) (string, error) {
		opts := s.options(req)
		opts.Verify = queryvis.VerifyOff
		r, err := queryvis.FromSQLContext(ctx, req.SQL, sch, opts)
		if err != nil {
			probeFailed = true
			return "", err
		}
		probeRes = r
		key, ok := queryvis.PatternFingerprintBounded(r.Diagram, maxFingerprintPerms)
		if !ok {
			return "", nil
		}
		return key, nil
	}
	build := func(ctx context.Context) (*diagcache.Entry, error) {
		r, err := s.verifyProbed(ctx, req, probeRes, requested)
		if err != nil {
			return nil, err
		}
		built, probeRes = r, r
		if !diagcache.CacheableStatus(r.VerifyStatus, r.Degraded) {
			return nil, nil
		}
		e, rerr := queryvis.BuildEntryContext(ctx, r)
		if rerr != nil {
			return nil, nil // serve uncached; rendering failures degrade below
		}
		return e, nil
	}

	entry, outcome, err := s.cache.GetOrBuild(ctx, s.cacheKey(req),
		requested.String(), wantVerified, probe, build)
	if err != nil {
		if probeFailed && requested == queryvis.VerifyDegrade {
			// The unverified probe fails where degrade mode would walk the
			// ladder; rerun the full pipeline so a non-user fault still serves
			// the highest reachable rung (uncached, by definition).
			return s.serveUncached(ctx, req, sch, started, "miss")
		}
		return nil, err
	}
	hdr := "miss"
	if outcome.Hit() {
		hdr = "hit"
	}
	if entry != nil {
		return s.respondEntry(req, entry, requested, started, hdr), nil
	}

	// Uncacheable: serve this caller's own result, verifying it first if
	// only the unverified probe ran (a follower whose leader's build was
	// uncacheable never entered build itself).
	var res *queryvis.Result
	switch {
	case built != nil:
		res = built
	case probeRes == nil:
		return s.serveUncached(ctx, req, sch, started, "miss")
	case probeRes.VerifyStatus == queryvis.VerifyStatusOff && wantVerified:
		if res, err = s.verifyProbed(ctx, req, probeRes, requested); err != nil {
			return nil, err
		}
	default:
		res = probeRes
	}
	return s.renderResult(ctx, req, res, requested, started, "miss")
}

// serveUncached is the historical path: full pipeline with breaker,
// quarantine, and verify metrics, then render.
func (s *Server) serveUncached(ctx context.Context, req *diagramRequest, sch *schema.Schema, started time.Time, hdr string) (*served, error) {
	res, mode, err := s.runVerified(ctx, req, sch)
	if err != nil {
		return nil, err
	}
	return s.renderResult(ctx, req, res, mode, started, hdr)
}

// verifyProbed is runVerified's second half for the cached path: the
// forward pipeline already ran (the probe build), so only verification
// remains. Breaker consultation and feedback, verdict counters, and
// quarantine behave identically to the uncached path.
func (s *Server) verifyProbed(ctx context.Context, req *diagramRequest, res *queryvis.Result, requested queryvis.VerifyMode) (*queryvis.Result, error) {
	mode := requested
	skipped := false
	if mode == queryvis.VerifyDegrade && !s.breaker.allow() {
		mode = queryvis.VerifyOff
		skipped = true
	}
	opts := s.options(req)
	opts.Verify = mode
	opts.VerifyBudget = s.cfg.VerifyBudget

	out, err := queryvis.VerifyResultContext(ctx, res, opts)

	status := verifyOutcome(out, err)
	if mode != queryvis.VerifyOff && status != "" {
		s.breaker.record(status == queryvis.VerifyStatusBudget ||
			status == queryvis.VerifyStatusTimeout)
		s.recordVerifyOutcome(status)
	}
	s.maybeQuarantine(ctx, req, out, err, status)

	if err != nil {
		return nil, err
	}
	if skipped {
		out.VerifyStatus = queryvis.VerifyStatusSkipped
		out.VerifyDetail = "verification circuit breaker open"
		s.recordVerifyOutcome(queryvis.VerifyStatusSkipped)
	}
	return out, nil
}

// respondEntry shapes a cache entry into the response. Entries are
// immutable and carry every format, so this is a field selection, not a
// render.
func (s *Server) respondEntry(req *diagramRequest, e *diagcache.Entry, mode queryvis.VerifyMode, started time.Time, hdr string) *served {
	out := e.DOT
	switch req.Format {
	case "svg":
		out = e.SVG
	case "text":
		out = e.Text
	}
	resp := diagramResponse{
		Format:         req.Format,
		Diagram:        out,
		Interpretation: e.Interpretation,
		ReadingOrder:   e.ReadingOrder,
		Tables:         e.Tables,
		Edges:          e.Edges,
		ElapsedMS:      time.Since(started).Milliseconds(),
		VerifyStatus:   e.VerifyStatus,
	}
	sv := &served{resp: resp, verifyStatus: e.VerifyStatus,
		cache: hdr, pattern: e.PatternHash}
	if mode == queryvis.VerifyOff || e.VerifyStatus == queryvis.VerifyStatusOff {
		// Keep the historical wire shape: a request that asked for no
		// verification reports none, even when the entry happens to carry a
		// proof.
		resp.VerifyStatus, sv.resp.VerifyStatus, sv.verifyStatus = "", "", ""
	}
	return sv
}

// renderResult turns a live pipeline result into the response,
// including the degrade-mode render fallback to the TRC rung.
func (s *Server) renderResult(ctx context.Context, req *diagramRequest, res *queryvis.Result, mode queryvis.VerifyMode, started time.Time, hdr string) (*served, error) {
	format, out := req.Format, ""
	var err error
	if res.Degraded == queryvis.RungTRC {
		// The ladder bottomed out below diagrams: serve the calculus text.
		format, out = "trc", res.TRCText
	} else {
		switch format {
		case "svg":
			out, err = res.SVGContext(ctx)
		case "text":
			out, err = res.TextContext(ctx)
		default:
			out, err = res.DOTContext(ctx, queryvis.DOTOptions{})
		}
		if err != nil {
			// In degrade mode a broken renderer drops the response to the TRC
			// rung rather than erroring; limit and context errors stay errors
			// (a policy bound or a dead client, not a degradable fault).
			var le *queryvis.LimitError
			if mode != queryvis.VerifyDegrade ||
				errors.As(err, &le) || ctx.Err() != nil || res.TRC == nil {
				return nil, err
			}
			format, out = "trc", res.TRC.String()
			res.Degraded = queryvis.RungTRC
			res.Diagram = nil
		}
	}

	resp := diagramResponse{
		Format:         format,
		Diagram:        out,
		Interpretation: res.Interpretation,
		ElapsedMS:      time.Since(started).Milliseconds(),
		VerifyStatus:   res.VerifyStatus,
		Degraded:       res.Degraded,
	}
	if res.VerifyStatus == queryvis.VerifyStatusOff {
		resp.VerifyStatus = "" // keep the historical wire shape for verify=off
	}
	if res.Diagram != nil {
		resp.ReadingOrder = res.ReadingOrder()
		resp.Tables = len(res.Diagram.Tables)
		resp.Edges = len(res.Diagram.Edges)
	}
	return &served{resp: resp, verifyStatus: res.VerifyStatus,
		degraded: res.Degraded, cache: hdr}, nil
}
