package schema

// This file defines the schemas used throughout the paper:
//
//   - Beers: Ullman's beer-drinkers schema (Section 1.1)
//   - Chinook: the digital media store used for every study question
//     (Section 6.1 and Appendices D-F)
//   - Sailors, Students, Actors: the three Appendix-G schemas (Fig. 22)

// Beers returns Ullman's bar-drinker-beer schema:
// Likes(drinker, beer), Frequents(drinker, bar), Serves(bar, beer).
//
// The paper writes Likes(person, beer) in one place and uses L.drinker in
// the unique-set query; we follow the query text and the Fig. 3 queries,
// which use person for Frequents/Likes and drinker for the unique-set
// query. To support both spellings the tables carry both columns.
func Beers() *Schema {
	s := New("beers")
	s.AddTable("Likes", "drinker", "person", "beer", "drink")
	s.AddTable("Frequents", "drinker", "person", "bar")
	s.AddTable("Serves", "bar", "beer", "drink")
	return s
}

// Chinook returns the music-store schema from Fig. on tutorial page 2,
// used by all qualification and test questions.
func Chinook() *Schema {
	s := New("chinook")
	s.AddTable("Artist", "ArtistId", "Name")
	s.AddTable("Album", "AlbumId", "Title", "ArtistId")
	s.AddTable("Track",
		"TrackId", "Name", "AlbumId", "MediaTypeId", "GenreId",
		"Composer", "Milliseconds", "Bytes", "UnitPrice")
	s.AddTable("MediaType", "MediaTypeId", "Name")
	s.AddTable("Genre", "GenreId", "Name")
	s.AddTable("Playlist", "PlaylistId", "Name")
	s.AddTable("PlaylistTrack", "PlaylistId", "TrackId")
	s.AddTable("Invoice",
		"InvoiceId", "CustomerId", "InvoiceDate", "BillingAddress",
		"BillingCity", "BillingState", "BillingCountry",
		"BillingPostalCode", "Total")
	s.AddTable("InvoiceLine",
		"InvoiceLineId", "InvoiceId", "TrackId", "UnitPrice", "Quantity")
	s.AddTable("Customer",
		"CustomerId", "FirstName", "LastName", "Company", "Address",
		"City", "State", "Country", "PostalCode", "Phone", "Fax",
		"Email", "SupportRepId")
	s.AddTable("Employee",
		"EmployeeId", "LastName", "FirstName", "Title", "ReportsTo",
		"BirthDate", "HireDate", "Address", "City", "State", "Country",
		"PostalCode", "Phone", "Fax", "Email")
	return s
}

// Sailors returns the sailors-reserve-boats schema of Fig. 22a.
func Sailors() *Schema {
	s := New("sailors")
	s.AddTable("Sailor", "sid", "sname", "rating", "age")
	s.AddTable("Reserves", "sid", "bid", "day")
	s.AddTable("Boat", "bid", "bname", "color")
	return s
}

// Students returns the students-take-courses schema of Fig. 22b. The
// Appendix-G queries name the course table both Course and Class; both
// names resolve to the same relation shape.
func Students() *Schema {
	s := New("students")
	s.AddTable("Student", "sid", "sname")
	s.AddTable("Takes", "sid", "cid", "semester")
	s.AddTable("Class", "cid", "cname", "department")
	return s
}

// Actors returns the actors-play-in-movies schema of Fig. 22c. The
// Appendix-G queries use both Plays and Casts for the join table.
func Actors() *Schema {
	s := New("actors")
	s.AddTable("Actor", "aid", "aname")
	s.AddTable("Casts", "aid", "mid", "role")
	s.AddTable("Movie", "mid", "mname", "director")
	return s
}

// ByName returns a built-in schema by name, or false if unknown.
func ByName(name string) (*Schema, bool) {
	switch name {
	case "beers":
		return Beers(), true
	case "chinook":
		return Chinook(), true
	case "sailors":
		return Sailors(), true
	case "students":
		return Students(), true
	case "actors":
		return Actors(), true
	}
	return nil, false
}

// BuiltinNames lists the names accepted by ByName.
func BuiltinNames() []string {
	return []string{"beers", "chinook", "sailors", "students", "actors"}
}
