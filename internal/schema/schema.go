// Package schema defines relational schemas and name resolution for the
// SQL fragment supported by QueryVis.
//
// A Schema is a set of tables, each with an ordered list of columns. The
// resolver maps the table aliases and (possibly unqualified) column
// references of a parsed query onto schema tables, which every later stage
// of the pipeline (TRC, logic tree, diagram) relies on.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Table describes one relation: its name and ordered column names.
type Table struct {
	Name    string
	Columns []string
}

// HasColumn reports whether the table has a column with the given name
// (case-insensitive, as in SQL).
func (t *Table) HasColumn(name string) bool {
	for _, c := range t.Columns {
		if strings.EqualFold(c, name) {
			return true
		}
	}
	return false
}

// Column returns the canonical (schema-cased) name of the column, or an
// error if the table has no such column.
func (t *Table) Column(name string) (string, error) {
	for _, c := range t.Columns {
		if strings.EqualFold(c, name) {
			return c, nil
		}
	}
	return "", fmt.Errorf("table %s has no column %q", t.Name, name)
}

// Schema is a named collection of tables.
type Schema struct {
	Name   string
	tables map[string]*Table // lower-cased name -> table
	order  []string          // insertion order of lower-cased names
}

// New creates an empty schema with the given name.
func New(name string) *Schema {
	return &Schema{Name: name, tables: make(map[string]*Table)}
}

// AddTable adds a table to the schema. It panics if a table with the same
// (case-insensitive) name already exists: schemas are static program data,
// and a duplicate is a programming error.
func (s *Schema) AddTable(name string, columns ...string) *Table {
	key := strings.ToLower(name)
	if _, ok := s.tables[key]; ok {
		panic(fmt.Sprintf("schema %s: duplicate table %q", s.Name, name))
	}
	t := &Table{Name: name, Columns: append([]string(nil), columns...)}
	s.tables[key] = t
	s.order = append(s.order, key)
	return t
}

// Table looks up a table by case-insensitive name.
func (s *Schema) Table(name string) (*Table, bool) {
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables in insertion order.
func (s *Schema) Tables() []*Table {
	out := make([]*Table, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.tables[k])
	}
	return out
}

// TableNames returns the canonical table names, sorted alphabetically.
func (s *Schema) TableNames() []string {
	out := make([]string, 0, len(s.order))
	for _, k := range s.order {
		out = append(out, s.tables[k].Name)
	}
	sort.Strings(out)
	return out
}

// String renders the schema in the compact form used in the paper, e.g.
//
//	Sailor (sid, sname, rating, age)
//	Reserves (sid, bid, day)
func (s *Schema) String() string {
	var b strings.Builder
	for i, k := range s.order {
		if i > 0 {
			b.WriteByte('\n')
		}
		t := s.tables[k]
		fmt.Fprintf(&b, "%s (%s)", t.Name, strings.Join(t.Columns, ", "))
	}
	return b.String()
}
