package schema

import (
	"strings"
	"testing"
)

func TestNewAndAddTable(t *testing.T) {
	s := New("test")
	tbl := s.AddTable("Users", "id", "name")
	if tbl.Name != "Users" || len(tbl.Columns) != 2 {
		t.Errorf("table = %+v", tbl)
	}
	got, ok := s.Table("USERS")
	if !ok || got != tbl {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := s.Table("nope"); ok {
		t.Error("unknown table lookup should fail")
	}
}

func TestAddTableCopiesColumns(t *testing.T) {
	cols := []string{"a", "b"}
	s := New("x")
	tbl := s.AddTable("T", cols...)
	cols[0] = "mutated"
	if tbl.Columns[0] != "a" {
		t.Error("AddTable must copy its column slice")
	}
}

func TestDuplicateTablePanics(t *testing.T) {
	s := New("x")
	s.AddTable("T", "a")
	defer func() {
		if recover() == nil {
			t.Error("duplicate table should panic")
		}
	}()
	s.AddTable("t", "b") // case-insensitive duplicate
}

func TestTableColumnLookup(t *testing.T) {
	tbl := &Table{Name: "T", Columns: []string{"Alpha", "Beta"}}
	if !tbl.HasColumn("alpha") || tbl.HasColumn("gamma") {
		t.Error("HasColumn broken")
	}
	c, err := tbl.Column("BETA")
	if err != nil || c != "Beta" {
		t.Errorf("Column = %q, %v; want canonical Beta", c, err)
	}
	if _, err := tbl.Column("nope"); err == nil {
		t.Error("unknown column should error")
	}
}

func TestTablesPreserveInsertionOrder(t *testing.T) {
	s := New("x")
	s.AddTable("B", "x")
	s.AddTable("A", "y")
	tables := s.Tables()
	if tables[0].Name != "B" || tables[1].Name != "A" {
		t.Errorf("insertion order lost: %v", tables)
	}
	names := s.TableNames()
	if names[0] != "A" || names[1] != "B" {
		t.Errorf("TableNames should be sorted: %v", names)
	}
}

func TestStringRendersPaperStyle(t *testing.T) {
	s := Sailors()
	out := s.String()
	if !strings.Contains(out, "Sailor (sid, sname, rating, age)") {
		t.Errorf("rendering:\n%s", out)
	}
	if len(strings.Split(out, "\n")) != 3 {
		t.Errorf("expected 3 lines:\n%s", out)
	}
}

func TestBuiltinShapes(t *testing.T) {
	cases := []struct {
		s      *Schema
		tables int
		check  [2]string // table, column
	}{
		{Beers(), 3, [2]string{"Likes", "beer"}},
		{Chinook(), 11, [2]string{"Track", "Milliseconds"}},
		{Sailors(), 3, [2]string{"Boat", "color"}},
		{Students(), 3, [2]string{"Class", "department"}},
		{Actors(), 3, [2]string{"Movie", "director"}},
	}
	for _, c := range cases {
		if got := len(c.s.Tables()); got != c.tables {
			t.Errorf("%s: %d tables, want %d", c.s.Name, got, c.tables)
		}
		tbl, ok := c.s.Table(c.check[0])
		if !ok || !tbl.HasColumn(c.check[1]) {
			t.Errorf("%s: missing %s.%s", c.s.Name, c.check[0], c.check[1])
		}
	}
	// Independent instances: mutating one Beers() must not leak.
	a, b := Beers(), Beers()
	a.AddTable("Extra", "x")
	if _, ok := b.Table("Extra"); ok {
		t.Error("built-in schemas must be fresh instances")
	}
}
