package sqlparse

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// nested builds a syntactically valid query with depth levels of NOT
// EXISTS nesting.
func nested(depth int) string {
	var b strings.Builder
	b.WriteString("SELECT L0.drinker FROM Likes L0 WHERE ")
	for i := 1; i <= depth; i++ {
		fmt.Fprintf(&b, "NOT EXISTS (SELECT * FROM Likes L%d WHERE L%d.drinker = L%d.drinker AND ", i, i, i-1)
	}
	fmt.Fprintf(&b, "L%d.beer = L%d.beer", depth, depth)
	b.WriteString(strings.Repeat(")", depth))
	return b.String()
}

// TestParseDepthCap: nesting beyond MaxNestingDepth must fail with a
// parse error, not blow the goroutine stack — recover() cannot catch
// stack exhaustion, so the recursive-descent parser enforces a hard cap.
// Regression test for the unguarded recursion in parseSubquery.
func TestParseDepthCap(t *testing.T) {
	if _, err := Parse(nested(MaxNestingDepth + 1)); err == nil {
		t.Fatal("parse accepted nesting beyond the cap")
	} else if !strings.Contains(err.Error(), "nesting exceeds the maximum depth") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Just below the cap must still parse.
	q, err := Parse(nested(MaxNestingDepth - 1))
	if err != nil {
		t.Fatalf("parse at cap-1 failed: %v", err)
	}
	if got := q.NestingDepth(); got != MaxNestingDepth-1 {
		t.Fatalf("NestingDepth = %d, want %d", got, MaxNestingDepth-1)
	}
}

// TestParseDepthCapFarBeyond: even nesting an order of magnitude past
// the cap — deep enough to overflow the stack without the guard — is
// rejected cleanly.
func TestParseDepthCapFarBeyond(t *testing.T) {
	if _, err := Parse(nested(10 * MaxNestingDepth)); err == nil {
		t.Fatal("parse accepted 10x-cap nesting")
	}
}

// TestParseContextCanceled: a canceled context aborts the parse with the
// context error.
func TestParseContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParseContext(ctx, nested(500)); err == nil {
		t.Fatal("canceled parse succeeded")
	}
}
