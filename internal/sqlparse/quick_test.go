package sqlparse

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/schema"
)

// TestQuickParserNeverPanics feeds arbitrary strings to the parser: it
// may reject them, but it must never panic.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestQuickParserNeverPanicsOnSQLishInput mutates a valid query at random
// byte positions — closer to real-world malformed SQL than uniformly
// random strings.
func TestQuickParserNeverPanicsOnSQLishInput(t *testing.T) {
	base := []byte(`SELECT S.sname FROM Sailor S WHERE NOT EXISTS(
		SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid > 7)`)
	f := func(pos uint16, b byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		mutated := append([]byte(nil), base...)
		mutated[int(pos)%len(mutated)] = b
		_, _ = Parse(string(mutated))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// genQuery builds a random query AST over the sailors schema, up to the
// given nesting depth, using only constructs from the supported fragment.
func genQuery(rng *rand.Rand, depth int) *Query {
	tables := []struct {
		name string
		cols []string
	}{
		{"Sailor", []string{"sid", "sname", "rating", "age"}},
		{"Reserves", []string{"sid", "bid", "day"}},
		{"Boat", []string{"bid", "bname", "color"}},
	}
	q := &Query{}
	n := 1 + rng.Intn(2)
	aliases := make([]struct {
		alias string
		cols  []string
	}, 0, n)
	for i := 0; i < n; i++ {
		tb := tables[rng.Intn(len(tables))]
		alias := fmt.Sprintf("T%d_%d", depth, i)
		q.From = append(q.From, TableRef{Table: tb.name, Alias: alias})
		aliases = append(aliases, struct {
			alias string
			cols  []string
		}{alias, tb.cols})
	}
	col := func() ColumnRef {
		a := aliases[rng.Intn(len(aliases))]
		return ColumnRef{Table: a.alias, Column: a.cols[rng.Intn(len(a.cols))]}
	}
	if depth == 0 {
		q.Select = []SelectItem{{Col: col()}}
	} else {
		q.Star = true
	}
	ops := []Op{OpLt, OpLe, OpEq, OpNe, OpGe, OpGt}
	preds := 1 + rng.Intn(2)
	for i := 0; i < preds; i++ {
		switch rng.Intn(3) {
		case 0: // join predicate
			c1, c2 := col(), col()
			q.Where = append(q.Where, &Compare{
				Left:  Operand{Col: &c1},
				Op:    ops[rng.Intn(len(ops))],
				Right: Operand{Col: &c2},
			})
		case 1: // numeric selection
			c := col()
			k := NumberConst(float64(rng.Intn(10)))
			q.Where = append(q.Where, &Compare{
				Left:  Operand{Col: &c},
				Op:    ops[rng.Intn(len(ops))],
				Right: Operand{Const: &k},
			})
		default: // string selection
			c := col()
			k := StringConst(fmt.Sprintf("v%d", rng.Intn(4)))
			q.Where = append(q.Where, &Compare{
				Left:  Operand{Col: &c},
				Op:    OpEq,
				Right: Operand{Const: &k},
			})
		}
	}
	if depth < 2 && rng.Intn(2) == 0 {
		sub := genQuery(rng, depth+1)
		q.Where = append(q.Where, &Exists{Negated: rng.Intn(2) == 0, Sub: sub})
	}
	return q
}

// TestQuickFormatParseRoundTrip: for random generated queries,
// Parse(Format(q)) reproduces the same compact rendering, and resolution
// against the sailors schema succeeds.
func TestQuickFormatParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		q := genQuery(rng, 0)
		text := Format(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, text)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip changed query:\n  %s\n  %s", q, q2)
		}
		if _, err := Resolve(q2, schema.Sailors()); err != nil {
			t.Fatalf("resolve failed: %v\n%s", err, text)
		}
	}
}

// TestQuickWordCountPositive: WordCount is positive for any non-empty
// token sequence and monotone under concatenation.
func TestQuickWordCountPositive(t *testing.T) {
	f := func(a, b string) bool {
		wa, wb, wab := WordCount(a), WordCount(b), WordCount(a+" "+b)
		if wa < 0 || wb < 0 {
			return false
		}
		return wab >= wa && wab >= wb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
