package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/schema"
)

// uniqueSetSQL is the Fig. 1a query verbatim (modulo whitespace).
const uniqueSetSQL = `
SELECT L1.drinker
FROM Likes L1
WHERE NOT EXISTS(
  SELECT *
  FROM Likes L2
  WHERE L1.drinker <> L2.drinker
  AND NOT EXISTS(
    SELECT *
    FROM Likes L3
    WHERE L3.drinker = L2.drinker
    AND NOT EXISTS(
      SELECT *
      FROM Likes L4
      WHERE L4.drinker = L1.drinker
      AND L4.beer = L3.beer))
  AND NOT EXISTS(
    SELECT *
    FROM Likes L5
    WHERE L5.drinker = L1.drinker
    AND NOT EXISTS(
      SELECT *
      FROM Likes L6
      WHERE L6.drinker = L2.drinker
      AND L6.beer = L5.beer)))`

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse("SELECT T.TrackId FROM Track T WHERE T.UnitPrice > 2;")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 1 || q.Select[0].Col.String() != "T.TrackId" {
		t.Errorf("select list = %v, want [T.TrackId]", q.Select)
	}
	if len(q.From) != 1 || q.From[0].Table != "Track" || q.From[0].Alias != "T" {
		t.Errorf("from = %v, want Track T", q.From)
	}
	if len(q.Where) != 1 {
		t.Fatalf("where has %d predicates, want 1", len(q.Where))
	}
	cmp, ok := q.Where[0].(*Compare)
	if !ok {
		t.Fatalf("predicate is %T, want *Compare", q.Where[0])
	}
	if cmp.Op != OpGt || !cmp.Right.IsConst() || cmp.Right.Const.Num != 2 {
		t.Errorf("predicate = %v, want T.UnitPrice > 2", cmp)
	}
	if !cmp.IsSelection() {
		t.Error("T.UnitPrice > 2 should be a selection predicate")
	}
}

func TestParseConjunctiveQuery(t *testing.T) {
	// Qsome from Fig. 3a.
	q, err := Parse(`
		SELECT F.person
		FROM Frequents F, Likes L, Serves S
		WHERE F.person = L.person
		AND F.bar = S.bar
		AND L.drink = S.drink`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 3 {
		t.Errorf("got %d FROM items, want 3", len(q.From))
	}
	if len(q.Where) != 3 {
		t.Errorf("got %d predicates, want 3", len(q.Where))
	}
	if q.NestingDepth() != 0 {
		t.Errorf("nesting depth = %d, want 0", q.NestingDepth())
	}
	for _, p := range q.Where {
		if cmp := p.(*Compare); cmp.IsSelection() {
			t.Errorf("%v should be a join predicate", cmp)
		}
	}
}

func TestParseUniqueSetQuery(t *testing.T) {
	q, err := Parse(uniqueSetSQL)
	if err != nil {
		t.Fatal(err)
	}
	if d := q.NestingDepth(); d != 3 {
		t.Errorf("nesting depth = %d, want 3", d)
	}
	// Root has one subquery (L2), which has two (L3, L5), each with one.
	subs := q.Subqueries()
	if len(subs) != 1 {
		t.Fatalf("root has %d subqueries, want 1", len(subs))
	}
	l2 := subs[0]
	if len(l2.Subqueries()) != 2 {
		t.Fatalf("L2 block has %d subqueries, want 2", len(l2.Subqueries()))
	}
	for _, s := range l2.Subqueries() {
		if len(s.Subqueries()) != 1 {
			t.Errorf("depth-2 block has %d subqueries, want 1", len(s.Subqueries()))
		}
	}
	ex, ok := q.Where[0].(*Exists)
	if !ok || !ex.Negated {
		t.Errorf("root predicate = %v, want NOT EXISTS", q.Where[0])
	}
}

func TestParseInAndQuantified(t *testing.T) {
	// The three Fig. 24 syntactic variants must all parse.
	variants := []string{
		`SELECT S.sname FROM Sailor S
		 WHERE NOT EXISTS(
		   SELECT * FROM Reserves R WHERE R.sid = S.sid
		   AND NOT EXISTS(
		     SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))`,
		`SELECT S.sname FROM Sailor S
		 WHERE S.sid NOT IN(
		   SELECT R.sid FROM Reserves R
		   WHERE R.bid NOT IN(
		     SELECT B.bid FROM Boat B WHERE B.color = 'red'))`,
		`SELECT S.sname FROM Sailor S
		 WHERE NOT S.sid = ANY(
		   SELECT R.sid FROM Reserves R
		   WHERE NOT R.bid = ANY(
		     SELECT B.bid FROM Boat B WHERE B.color = 'red'))`,
	}
	for i, v := range variants {
		q, err := Parse(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if d := q.NestingDepth(); d != 2 {
			t.Errorf("variant %d: nesting depth = %d, want 2", i, d)
		}
	}
}

func TestParseQuantifiedAll(t *testing.T) {
	q, err := Parse(`SELECT S.sname FROM Sailor S
		WHERE S.rating >= ALL (SELECT S2.rating FROM Sailor S2)`)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := q.Where[0].(*Quantified)
	if !ok {
		t.Fatalf("predicate is %T, want *Quantified", q.Where[0])
	}
	if !p.All || p.Op != OpGe || p.Negated {
		t.Errorf("got %v, want S.rating >= ALL (...)", p)
	}
}

func TestParseGroupBy(t *testing.T) {
	q, err := Parse(`
		SELECT P.PlaylistId, G.Name, COUNT(T.TrackId)
		FROM Playlist P, PlaylistTrack PT, Track T, Genre G
		WHERE P.PlaylistId = PT.PlaylistId
		AND PT.TrackId = T.TrackId
		AND T.GenreId = G.GenreId
		GROUP BY P.PlaylistId, G.Name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 3 {
		t.Fatalf("select list has %d items, want 3", len(q.Select))
	}
	if q.Select[2].Agg != AggCount || q.Select[2].Star {
		t.Errorf("third item = %v, want COUNT(T.TrackId)", q.Select[2])
	}
	if len(q.GroupBy) != 2 {
		t.Errorf("GROUP BY has %d columns, want 2", len(q.GroupBy))
	}
}

func TestParseCountStar(t *testing.T) {
	q, err := Parse(`SELECT C.Country, COUNT(*) FROM Customer C GROUP BY C.Country`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Select[1].Star || q.Select[1].Agg != AggCount {
		t.Errorf("got %v, want COUNT(*)", q.Select[1])
	}
}

func TestParseAliasForms(t *testing.T) {
	for _, src := range []string{
		"SELECT L.drinker FROM Likes AS L",
		"SELECT L.drinker FROM Likes L",
		"SELECT drinker FROM Likes",
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"", "expected SELECT"},
		{"SELECT", "expected identifier"},
		{"SELECT x", "expected FROM"},
		{"SELECT x FROM", "expected identifier"},
		{"SELECT x FROM T WHERE", "expected column or constant"},
		{"SELECT x FROM T WHERE a = ", "expected column or constant"},
		{"SELECT x FROM T WHERE 1 = 2", "at most one side"},
		{"SELECT x FROM T WHERE a = b extra", "unexpected"},
		{"SELECT x FROM T WHERE NOT a = b", "NOT may only negate"},
		{"SELECT drinker FROM Likes L WHERE L.drinker IN (SELECT * FROM Serves S)", "single column"},
		{"SELECT drinker FROM Likes L WHERE L.beer > ALL (SELECT S.bar, S.beer FROM Serves S)", "exactly one column"},
		{"SELECT SUM(*) FROM T", "only COUNT(*)"},
		{"SELECT x FROM T WHERE a = 'oops", "unterminated string"},
		{"SELECT x FROM T WHERE a ! b", "unexpected character"},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err == nil {
			// Membership-subquery shape errors surface during Resolve.
			_, err = Resolve(q, schema.Beers())
		}
		if err == nil {
			t.Errorf("%q: expected an error containing %q, got none", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error = %q, want it to contain %q", c.src, err, c.want)
		}
	}
}

func TestParsePositionsInErrors(t *testing.T) {
	_, err := Parse("SELECT x\nFROM T\nWHERE a = ?")
	if err == nil || !strings.Contains(err.Error(), "3:") {
		t.Errorf("error %v should carry line 3", err)
	}
}

func TestOpFlipAndNegate(t *testing.T) {
	ops := []Op{OpLt, OpLe, OpEq, OpNe, OpGe, OpGt}
	flips := map[Op]Op{OpLt: OpGt, OpLe: OpGe, OpEq: OpEq, OpNe: OpNe, OpGe: OpLe, OpGt: OpLt}
	negs := map[Op]Op{OpLt: OpGe, OpLe: OpGt, OpEq: OpNe, OpNe: OpEq, OpGe: OpLt, OpGt: OpLe}
	for _, o := range ops {
		if o.Flip() != flips[o] {
			t.Errorf("%v.Flip() = %v, want %v", o, o.Flip(), flips[o])
		}
		if o.Negate() != negs[o] {
			t.Errorf("%v.Negate() = %v, want %v", o, o.Negate(), negs[o])
		}
		if o.Flip().Flip() != o {
			t.Errorf("%v: Flip is not an involution", o)
		}
		if o.Negate().Negate() != o {
			t.Errorf("%v: Negate is not an involution", o)
		}
	}
}

func TestCommentsAndStrings(t *testing.T) {
	q, err := Parse(`
		-- find red boats
		SELECT B.bname /* block
		comment */ FROM Boat B
		WHERE B.color = 'it''s red'`)
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Where[0].(*Compare)
	if cmp.Right.Const.Str != "it's red" {
		t.Errorf("string constant = %q, want %q", cmp.Right.Const.Str, "it's red")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	for _, src := range []string{
		uniqueSetSQL,
		"SELECT T.TrackId FROM Track T WHERE T.UnitPrice > 2",
		`SELECT P.PlaylistId, COUNT(T.TrackId) FROM Playlist P, Track T
		 WHERE P.PlaylistId = T.TrackId GROUP BY P.PlaylistId`,
		`SELECT S.sname FROM Sailor S WHERE S.sid NOT IN (SELECT R.sid FROM Reserves R)`,
		`SELECT S.sname FROM Sailor S WHERE NOT S.sid = ANY (SELECT R.sid FROM Reserves R)`,
	} {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		text := Format(q1)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse of formatted text failed: %v\n%s", err, text)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed the query:\n  before: %s\n  after:  %s", q1, q2)
		}
	}
}

func TestWordCount(t *testing.T) {
	if n := WordCount("SELECT F.person FROM Frequents F"); n != 5 {
		t.Errorf("WordCount = %d, want 5", n)
	}
	// The paper: Qonly's SQL has 167% more words than Qsome's. Our counter
	// must at least rank them correctly with a large gap.
	some := "SELECT F.person FROM Frequents F, Likes L, Serves S WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink"
	only := `SELECT F.person FROM Frequents F WHERE not exists
		(SELECT * FROM Serves S WHERE S.bar = F.bar AND not exists
		(SELECT L.drink FROM Likes L WHERE L.person = F.person AND S.drink = L.drink))`
	if WordCount(only) <= WordCount(some) {
		t.Errorf("WordCount(Qonly)=%d should exceed WordCount(Qsome)=%d",
			WordCount(only), WordCount(some))
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on invalid SQL")
		}
	}()
	MustParse("not sql")
}

func TestParseArithmeticOperands(t *testing.T) {
	q, err := Parse(`SELECT S.a FROM T S WHERE S.a + 5 < S.b AND S.c - 2.5 = S.d AND S.e > 7`)
	if err != nil {
		t.Fatal(err)
	}
	c0 := q.Where[0].(*Compare)
	if c0.Left.Offset != 5 || c0.Left.String() != "S.a + 5" {
		t.Errorf("left operand = %v (offset %v)", c0.Left, c0.Left.Offset)
	}
	c1 := q.Where[1].(*Compare)
	if c1.Left.Offset != -2.5 || c1.Left.String() != "S.c - 2.5" {
		t.Errorf("minus operand = %v (offset %v)", c1.Left, c1.Left.Offset)
	}
	// Round-trips through the printer.
	q2, err := Parse(Format(q))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, Format(q))
	}
	if q.String() != q2.String() {
		t.Errorf("arithmetic round trip changed query:\n%s\n%s", q, q2)
	}
	// A bare +/- not followed by a number is an error.
	if _, err := Parse(`SELECT x FROM T WHERE a + b = c`); err == nil {
		t.Error("col + col should be rejected (only col ± number is supported)")
	}
}
