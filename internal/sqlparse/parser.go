package sqlparse

import (
	"context"
	"fmt"
	"strconv"
	"strings"
)

// reserved lists keywords that cannot be used as implicit table aliases.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "and": true,
	"not": true, "exists": true, "in": true, "all": true, "any": true,
	"as": true, "group": true, "by": true, "order": true, "having": true,
}

// MaxNestingDepth is the hard cap on subquery nesting the parser accepts.
// The parser descends recursively, one Go stack frame chain per nesting
// level, so without a cap an adversarial input of megabytes of "NOT
// EXISTS (SELECT ..." could exhaust the goroutine stack — a crash no
// recover() can contain. Inputs deeper than this cap are rejected with a
// positioned error instead. The cap is far above both the paper's
// observed maximum (3 levels, Section 5.2) and any configurable
// application limit layered on top.
const MaxNestingDepth = 1000

// Parse parses a single SQL query in the supported fragment. A trailing
// semicolon is allowed. Errors carry 1-based line:column positions.
func Parse(src string) (*Query, error) {
	return ParseContext(context.Background(), src)
}

// ParseContext is Parse with cooperative cancellation: the lexer and the
// recursive descent check ctx periodically and abandon the parse with
// ctx.Err() once the context is done.
func ParseContext(ctx context.Context, src string) (*Query, error) {
	toks, err := lexAllContext(ctx, src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, ctx: ctx}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokSemi {
		p.advance()
	}
	if p.cur().kind != tokEOF {
		return nil, p.errorf("unexpected %s after query", p.cur().kind)
	}
	return q, nil
}

// MustParse is Parse but panics on error. It is intended for static query
// corpora and tests, where a parse failure is a programming error.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("sqlparse.MustParse: %v\nquery:\n%s", err, src))
	}
	return q
}

type parser struct {
	toks  []token
	pos   int
	ctx   context.Context
	depth int  // current subquery nesting depth
	steps uint // predicate counter driving periodic ctx checks
}

func (p *parser) cur() token { return p.toks[p.pos] }

// checkCtx reports the context's error every few hundred predicates, so
// that parsing a pathologically large query stops promptly after
// cancellation without paying a per-token synchronization cost.
func (p *parser) checkCtx() error {
	if p.steps++; p.steps&255 != 0 {
		return nil
	}
	return p.ctx.Err()
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("%d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errorf("expected %s, found %s %q", k, p.cur().kind, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().keyword(kw) {
		return p.errorf("expected %s, found %q", strings.ToUpper(kw), p.cur().text)
	}
	p.advance()
	return nil
}

func aggFromKeyword(text string) Agg {
	switch strings.ToUpper(text) {
	case "COUNT":
		return AggCount
	case "SUM":
		return AggSum
	case "AVG":
		return AggAvg
	case "MIN":
		return AggMin
	case "MAX":
		return AggMax
	}
	return AggNone
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.cur().kind == tokStar {
		p.advance()
		q.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, item)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, ref)
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}
	if p.cur().keyword("where") {
		p.advance()
		for {
			if err := p.checkCtx(); err != nil {
				return nil, err
			}
			pred, err := p.parsePredicate()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if !p.cur().keyword("and") {
				break
			}
			p.advance()
		}
	}
	if p.cur().keyword("group") {
		p.advance()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.cur()
	if t.kind == tokIdent {
		if agg := aggFromKeyword(t.text); agg != AggNone && p.toks[p.pos+1].kind == tokLParen {
			p.advance() // aggregate keyword
			p.advance() // (
			item := SelectItem{Agg: agg}
			if p.cur().kind == tokStar {
				if agg != AggCount {
					return SelectItem{}, p.errorf("%s(*) is not allowed; only COUNT(*)", agg)
				}
				p.advance()
				item.Star = true
			} else {
				col, err := p.parseColumnRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Col = col
			}
			if _, err := p.expect(tokRParen); err != nil {
				return SelectItem{}, err
			}
			return item, nil
		}
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Col: col}, nil
}

func (p *parser) parseColumnRef() (ColumnRef, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return ColumnRef{}, err
	}
	if p.cur().kind == tokDot {
		p.advance()
		col, err := p.expect(tokIdent)
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: t.text, Column: col.text}, nil
	}
	return ColumnRef{Column: t.text}, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: t.text}
	if p.cur().keyword("as") {
		p.advance()
		a, err := p.expect(tokIdent)
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = a.text
		return ref, nil
	}
	if p.cur().kind == tokIdent && !reserved[strings.ToLower(p.cur().text)] {
		ref.Alias = p.advance().text
	}
	return ref, nil
}

func (p *parser) parseOp() (Op, error) {
	switch p.cur().kind {
	case tokLt:
		p.advance()
		return OpLt, nil
	case tokLe:
		p.advance()
		return OpLe, nil
	case tokEq:
		p.advance()
		return OpEq, nil
	case tokNe:
		p.advance()
		return OpNe, nil
	case tokGe:
		p.advance()
		return OpGe, nil
	case tokGt:
		p.advance()
		return OpGt, nil
	}
	return 0, p.errorf("expected comparison operator, found %s %q", p.cur().kind, p.cur().text)
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Operand{}, p.errorf("invalid number %q", t.text)
		}
		return Operand{Const: &Constant{Num: v, Raw: t.text}}, nil
	case tokString:
		p.advance()
		return Operand{Const: &Constant{IsString: true, Str: t.text}}, nil
	case tokIdent:
		col, err := p.parseColumnRef()
		if err != nil {
			return Operand{}, err
		}
		op := Operand{Col: &col}
		// Arithmetic extension (the paper's future work): col ± number.
		if sign, ok := p.peekSign(); ok {
			p.advance() // the sign token
			num, err := p.expect(tokNumber)
			if err != nil {
				return Operand{}, err
			}
			v, err := strconv.ParseFloat(num.text, 64)
			if err != nil {
				return Operand{}, p.errorf("invalid number %q", num.text)
			}
			op.Offset = sign * v
		}
		return op, nil
	}
	return Operand{}, p.errorf("expected column or constant, found %s %q", t.kind, t.text)
}

// peekSign reports whether the current token is an arithmetic '+' or '-'
// followed by a number, returning its sign.
func (p *parser) peekSign() (float64, bool) {
	t := p.cur()
	if t.kind != tokPlus && t.kind != tokMinus {
		return 0, false
	}
	if p.toks[p.pos+1].kind != tokNumber {
		return 0, false
	}
	if t.kind == tokMinus {
		return -1, true
	}
	return 1, true
}

func (p *parser) parseSubquery() (*Query, error) {
	if p.depth >= MaxNestingDepth {
		return nil, p.errorf("subquery nesting exceeds the maximum depth %d", MaxNestingDepth)
	}
	if err := p.ctx.Err(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	p.depth++
	q, err := p.parseQuery()
	p.depth--
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return q, nil
}

func (p *parser) parsePredicate() (Predicate, error) {
	// NOT EXISTS (...) or NOT <quantified/membership predicate>
	if p.cur().keyword("not") {
		p.advance()
		if p.cur().keyword("exists") {
			p.advance()
			sub, err := p.parseSubquery()
			if err != nil {
				return nil, err
			}
			return &Exists{Negated: true, Sub: sub}, nil
		}
		inner, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		switch inner := inner.(type) {
		case *Exists:
			inner.Negated = !inner.Negated
			return inner, nil
		case *In:
			inner.Negated = !inner.Negated
			return inner, nil
		case *Quantified:
			inner.Negated = !inner.Negated
			return inner, nil
		}
		return nil, p.errorf("NOT may only negate EXISTS, IN, or quantified subquery predicates")
	}
	if p.cur().keyword("exists") {
		p.advance()
		sub, err := p.parseSubquery()
		if err != nil {
			return nil, err
		}
		return &Exists{Sub: sub}, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// col [NOT] IN (subquery)
	if p.cur().keyword("in") || (p.cur().keyword("not") && p.toks[p.pos+1].keyword("in")) {
		negated := false
		if p.cur().keyword("not") {
			p.advance()
			negated = true
		}
		p.advance() // IN
		if left.Col == nil {
			return nil, p.errorf("IN requires a column on the left-hand side")
		}
		sub, err := p.parseSubquery()
		if err != nil {
			return nil, err
		}
		return &In{Col: *left.Col, Negated: negated, Sub: sub}, nil
	}
	op, err := p.parseOp()
	if err != nil {
		return nil, err
	}
	// col op ALL|ANY (subquery)
	if p.cur().keyword("all") || p.cur().keyword("any") {
		all := p.cur().keyword("all")
		p.advance()
		if left.Col == nil {
			return nil, p.errorf("quantified comparison requires a column on the left-hand side")
		}
		sub, err := p.parseSubquery()
		if err != nil {
			return nil, err
		}
		return &Quantified{Col: *left.Col, Op: op, All: all, Sub: sub}, nil
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if left.IsConst() && right.IsConst() {
		return nil, p.errorf("at most one side of a predicate may be a constant")
	}
	return &Compare{Left: left, Op: op, Right: right}, nil
}
