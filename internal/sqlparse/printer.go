package sqlparse

import (
	"strings"
)

// Format pretty-prints the query in the paper's style: capitalized
// keywords, one clause per line, subqueries indented under the predicate
// that introduces them (compare Fig. 1a and Fig. 3b).
func Format(q *Query) string {
	var b strings.Builder
	formatQuery(&b, q, 0)
	b.WriteString(";")
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatQuery(b *strings.Builder, q *Query, depth int) {
	indent(b, depth)
	b.WriteString("SELECT ")
	if q.Star {
		b.WriteString("*")
	} else {
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
	}
	b.WriteString("\n")
	indent(b, depth)
	b.WriteString("FROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if len(q.Where) > 0 {
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString("\n")
				indent(b, depth)
				b.WriteString("AND ")
			}
			formatPredicate(b, p, depth)
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
}

func formatPredicate(b *strings.Builder, p Predicate, depth int) {
	switch p := p.(type) {
	case *Compare:
		b.WriteString(p.String())
	case *Exists:
		if p.Negated {
			b.WriteString("NOT EXISTS (\n")
		} else {
			b.WriteString("EXISTS (\n")
		}
		formatQuery(b, p.Sub, depth+1)
		b.WriteString(")")
	case *In:
		b.WriteString(p.Col.String())
		if p.Negated {
			b.WriteString(" NOT IN (\n")
		} else {
			b.WriteString(" IN (\n")
		}
		formatQuery(b, p.Sub, depth+1)
		b.WriteString(")")
	case *Quantified:
		if p.Negated {
			b.WriteString("NOT ")
		}
		b.WriteString(p.Col.String())
		b.WriteString(" ")
		b.WriteString(p.Op.String())
		if p.All {
			b.WriteString(" ALL (\n")
		} else {
			b.WriteString(" ANY (\n")
		}
		formatQuery(b, p.Sub, depth+1)
		b.WriteString(")")
	}
}

// WordCount counts whitespace-separated words in SQL text after splitting
// punctuation-joined tokens apart. It is the metric behind the paper's
// Section 4.8 claim that Qonly's SQL text has 167% more words than Qsome's.
func WordCount(sql string) int {
	replacer := strings.NewReplacer(
		"(", " ", ")", " ", ",", " ", ";", " ",
		"=", " = ", "<>", " <> ", "<", " < ", ">", " > ",
	)
	n := 0
	for _, f := range strings.Fields(replacer.Replace(sql)) {
		if f != "" {
			n++
		}
	}
	return n
}
