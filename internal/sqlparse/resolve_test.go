package sqlparse

import (
	"strings"
	"testing"

	"repro/internal/schema"
)

func mustResolve(t *testing.T, src string, s *schema.Schema) (*Query, *Resolution) {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := Resolve(q, s)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return q, r
}

func TestResolveQualifiesColumns(t *testing.T) {
	q, _ := mustResolve(t, "SELECT drinker FROM Likes", schema.Beers())
	if got := q.Select[0].Col.String(); got != "Likes.drinker" {
		t.Errorf("select column = %q, want Likes.drinker", got)
	}
}

func TestResolveCanonicalizesCase(t *testing.T) {
	q, _ := mustResolve(t,
		"SELECT t.trackid FROM track t WHERE t.unitprice > 2", schema.Chinook())
	if q.From[0].Table != "Track" {
		t.Errorf("table name = %q, want Track", q.From[0].Table)
	}
	if got := q.Select[0].Col.Column; got != "TrackId" {
		t.Errorf("column = %q, want TrackId", got)
	}
	cmp := q.Where[0].(*Compare)
	if cmp.Left.Col.Column != "UnitPrice" {
		t.Errorf("predicate column = %q, want UnitPrice", cmp.Left.Col.Column)
	}
}

func TestResolveDepthsAndParents(t *testing.T) {
	q, r := mustResolve(t, uniqueSetSQL, schema.Beers())
	if r.Depth[q] != 0 {
		t.Errorf("root depth = %d, want 0", r.Depth[q])
	}
	l2 := q.Subqueries()[0]
	if r.Depth[l2] != 1 || r.Parent[l2] != q {
		t.Errorf("L2 block: depth=%d parent ok=%v", r.Depth[l2], r.Parent[l2] == q)
	}
	for _, s := range l2.Subqueries() {
		if r.Depth[s] != 2 || r.Parent[s] != l2 {
			t.Errorf("depth-2 block: depth=%d", r.Depth[s])
		}
		inner := s.Subqueries()[0]
		if r.Depth[inner] != 3 || r.Parent[inner] != s {
			t.Errorf("depth-3 block: depth=%d", r.Depth[inner])
		}
	}
	if n := len(r.AllBindings()); n != 6 {
		t.Errorf("got %d bindings, want 6 (L1..L6)", n)
	}
}

func TestResolveCorrelatedReference(t *testing.T) {
	// Inner block references the outer alias F: must resolve via scope chain.
	q, r := mustResolve(t, `
		SELECT F.person FROM Frequents F
		WHERE NOT EXISTS (SELECT * FROM Serves S WHERE S.bar = F.bar)`,
		schema.Beers())
	inner := q.Subqueries()[0]
	b, ok := r.Binding(inner, "F")
	if !ok || b.Depth != 0 || b.Table.Name != "Frequents" {
		t.Fatalf("binding for F at inner block = %+v, ok=%v", b, ok)
	}
	if _, ok := r.Binding(q, "S"); ok {
		t.Error("inner alias S must not be visible at the root block")
	}
}

func TestResolveShadowing(t *testing.T) {
	// The same alias name at different depths: the inner use must bind to
	// the inner table.
	q, r := mustResolve(t, `
		SELECT X.drinker FROM Likes X
		WHERE NOT EXISTS (SELECT * FROM Serves X WHERE X.bar = 'Owl')`,
		schema.Beers())
	inner := q.Subqueries()[0]
	b, _ := r.Binding(inner, "X")
	if b.Table.Name != "Serves" {
		t.Errorf("inner X bound to %s, want Serves", b.Table.Name)
	}
	outer, _ := r.Binding(q, "X")
	if outer.Table.Name != "Likes" {
		t.Errorf("outer X bound to %s, want Likes", outer.Table.Name)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		src, want string
		sch       *schema.Schema
	}{
		{"SELECT x FROM Nope", "unknown table", schema.Beers()},
		{"SELECT Z.drinker FROM Likes L", "unknown table alias", schema.Beers()},
		{"SELECT L.nope FROM Likes L", "no column", schema.Beers()},
		{"SELECT wat FROM Likes L", "not found in any table", schema.Beers()},
		{"SELECT Name FROM Artist A, Genre G", "ambiguous column", schema.Chinook()},
		{"SELECT L.drinker FROM Likes L, Likes L", "duplicate table alias", schema.Beers()},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("%q failed to parse: %v", c.src, err)
		}
		_, err = Resolve(q, c.sch)
		if err == nil {
			t.Errorf("%q: expected error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error = %q, want substring %q", c.src, err, c.want)
		}
	}
}

func TestResolveUnqualifiedPrefersLocal(t *testing.T) {
	// "bar" exists in both Frequents (outer) and Serves (inner); inside the
	// subquery it must bind to the local Serves.
	q, _ := mustResolve(t, `
		SELECT F.person FROM Frequents F
		WHERE NOT EXISTS (SELECT * FROM Serves S WHERE bar = 'Owl')`,
		schema.Beers())
	inner := q.Subqueries()[0]
	cmp := inner.Where[0].(*Compare)
	if cmp.Left.Col.Table != "S" {
		t.Errorf("unqualified bar bound to %s, want local S", cmp.Left.Col.Table)
	}
}

func TestSchemaBuiltins(t *testing.T) {
	for _, name := range schema.BuiltinNames() {
		s, ok := schema.ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) failed", name)
		}
		if len(s.Tables()) == 0 {
			t.Errorf("schema %s has no tables", name)
		}
		if s.String() == "" {
			t.Errorf("schema %s renders empty", name)
		}
	}
	if _, ok := schema.ByName("nope"); ok {
		t.Error("ByName should reject unknown names")
	}
	ch := schema.Chinook()
	tbl, ok := ch.Table("track")
	if !ok || !tbl.HasColumn("milliseconds") {
		t.Error("case-insensitive table/column lookup failed")
	}
	if len(ch.TableNames()) != 11 {
		t.Errorf("Chinook has %d tables, want 11", len(ch.TableNames()))
	}
}
