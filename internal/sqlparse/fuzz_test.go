package sqlparse

import "testing"

// FuzzParse drives the parser with mutated SQL. The invariants are the
// same as the quick tests: no panics ever, and anything that parses must
// format and re-parse to the same compact rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT T.TrackId FROM Track T WHERE T.UnitPrice > 2;",
		"SELECT L1.drinker FROM Likes L1 WHERE NOT EXISTS(SELECT * FROM Likes L2 WHERE L1.drinker <> L2.drinker)",
		"SELECT S.sname FROM Sailor S WHERE S.sid NOT IN (SELECT R.sid FROM Reserves R)",
		"SELECT S.sname FROM Sailor S WHERE NOT S.sid = ANY (SELECT R.sid FROM Reserves R)",
		"SELECT C.Country, COUNT(*) FROM Customer C GROUP BY C.Country",
		"SELECT a FROM T WHERE a + 5 < b AND c - 2.5 = d",
		"SELECT x FROM T WHERE s = 'it''s -- not a comment' /* block */",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output failed to re-parse: %v\ninput: %q\nformatted:\n%s", err, src, text)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip changed the query:\n  %s\n  %s", q, q2)
		}
	})
}
