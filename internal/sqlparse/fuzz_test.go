package sqlparse

import "testing"

// FuzzParse drives the parser with mutated SQL. The invariants are the
// same as the quick tests: no panics ever, and anything that parses must
// format and re-parse to the same compact rendering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT T.TrackId FROM Track T WHERE T.UnitPrice > 2;",
		"SELECT L1.drinker FROM Likes L1 WHERE NOT EXISTS(SELECT * FROM Likes L2 WHERE L1.drinker <> L2.drinker)",
		"SELECT S.sname FROM Sailor S WHERE S.sid NOT IN (SELECT R.sid FROM Reserves R)",
		"SELECT S.sname FROM Sailor S WHERE NOT S.sid = ANY (SELECT R.sid FROM Reserves R)",
		"SELECT C.Country, COUNT(*) FROM Customer C GROUP BY C.Country",
		"SELECT a FROM T WHERE a + 5 < b AND c - 2.5 = d",
		"SELECT x FROM T WHERE s = 'it''s -- not a comment' /* block */",
		// GROUP BY with every aggregate, and the (unsupported) HAVING
		// keyword, which must produce a clean error rather than a panic.
		"SELECT T.a, COUNT(T.b), MIN(T.c), MAX(T.d), SUM(T.e), AVG(T.f) FROM T GROUP BY T.a",
		"SELECT C.Country, COUNT(*) FROM Customer C GROUP BY C.Country HAVING COUNT(*) > 5",
		// Quantified comparisons in every op/quantifier pairing.
		"SELECT S.sname FROM Sailor S WHERE S.rating >= ALL (SELECT S2.rating FROM Sailor S2)",
		"SELECT S.sname FROM Sailor S WHERE S.age < ANY (SELECT R.day FROM Reserves R WHERE R.sid = S.sid)",
		"SELECT S.sname FROM Sailor S WHERE NOT S.rating <> ALL (SELECT R.bid FROM Reserves R)",
		// Quoted identifiers are outside the fragment: clean error expected.
		"SELECT \"T\".\"a\" FROM \"T\"",
		"SELECT T.a FROM T WHERE T.\"b\" = 1",
		// Offset arithmetic on both sides and nested negation stacking.
		"SELECT T.a FROM T WHERE T.a + 1 <= T.b - 2 AND NOT EXISTS(SELECT * FROM U WHERE U.x = T.a AND NOT EXISTS(SELECT * FROM V WHERE V.y = U.x))",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		text := Format(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("formatted output failed to re-parse: %v\ninput: %q\nformatted:\n%s", err, src, text)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip changed the query:\n  %s\n  %s", q, q2)
		}
	})
}
