package sqlparse

import (
	"fmt"
	"math/rand"
	"testing"
)

// astGen builds random ASTs directly — independently of the parser — so
// the printer is exercised on trees the string-level fuzzer cannot reach
// systematically.
type astGen struct {
	rng    *rand.Rand
	nAlias int
}

func (g *astGen) alias() string {
	g.nAlias++
	return fmt.Sprintf("t%d", g.nAlias-1)
}

func (g *astGen) column() string {
	return fmt.Sprintf("c%d", g.rng.Intn(6))
}

// colRef is qualified by one of the in-scope aliases, or occasionally
// left bare (the parser accepts unqualified references).
func (g *astGen) colRef(scope []string) ColumnRef {
	if len(scope) == 0 || g.rng.Intn(10) == 0 {
		return ColumnRef{Column: g.column()}
	}
	return ColumnRef{Table: scope[g.rng.Intn(len(scope))], Column: g.column()}
}

func (g *astGen) constant() Constant {
	if g.rng.Intn(2) == 0 {
		return NumberConst(float64(g.rng.Intn(10)))
	}
	return StringConst(fmt.Sprintf("v%d", g.rng.Intn(10)))
}

func (g *astGen) op() Op {
	return Op(g.rng.Intn(6))
}

// colOperand optionally carries an integer offset, the "T.a + 5" form.
func (g *astGen) colOperand(scope []string) Operand {
	o := Operand{Col: &ColumnRef{}}
	*o.Col = g.colRef(scope)
	if g.rng.Intn(4) == 0 {
		o.Offset = float64(g.rng.Intn(5) - 2)
	}
	return o
}

// compare builds "col op col" or "col op const" — never const op const,
// which the parser rejects.
func (g *astGen) compare(scope []string) *Compare {
	c := &Compare{Left: g.colOperand(scope), Op: g.op()}
	if g.rng.Intn(2) == 0 {
		c.Right = ConstOperand(g.constant())
	} else {
		c.Right = g.colOperand(scope)
	}
	return c
}

// query builds a random block; depth bounds subquery nesting and outer
// is the enclosing scope usable in correlated predicates.
func (g *astGen) query(depth int, outer []string) *Query {
	q := &Query{}
	nFrom := 1 + g.rng.Intn(2)
	var locals []string
	for i := 0; i < nFrom; i++ {
		a := g.alias()
		q.From = append(q.From, TableRef{Table: fmt.Sprintf("Rel%d", g.rng.Intn(4)), Alias: a})
		locals = append(locals, a)
	}
	scope := append(append([]string{}, outer...), locals...)

	// Select list: star, plain columns, or GROUP BY + aggregates.
	switch g.rng.Intn(4) {
	case 0:
		q.Star = true
	case 1:
		key := g.colRef(locals)
		q.Select = append(q.Select, SelectItem{Col: key})
		q.GroupBy = append(q.GroupBy, key)
		agg := Agg(1 + g.rng.Intn(5))
		if agg == AggCount && g.rng.Intn(2) == 0 {
			q.Select = append(q.Select, SelectItem{Agg: agg, Star: true})
		} else {
			q.Select = append(q.Select, SelectItem{Agg: agg, Col: g.colRef(locals)})
		}
	default:
		for i := 1 + g.rng.Intn(2); i > 0; i-- {
			q.Select = append(q.Select, SelectItem{Col: g.colRef(locals)})
		}
	}

	for i := g.rng.Intn(3); i > 0; i-- {
		q.Where = append(q.Where, g.compare(scope))
	}
	if depth > 0 {
		for i := g.rng.Intn(3); i > 0; i-- {
			q.Where = append(q.Where, g.subquery(depth-1, scope))
		}
	}
	return q
}

// subquery builds one of the four subquery predicate forms. IN and
// quantified subqueries get the single-plain-column select list the
// parser's checkSingleColumnSub demands.
func (g *astGen) subquery(depth int, scope []string) Predicate {
	switch g.rng.Intn(3) {
	case 0:
		sub := g.query(depth, scope)
		return &Exists{Negated: g.rng.Intn(2) == 0, Sub: sub}
	case 1:
		sub := g.narrowQuery(depth, scope)
		return &In{Col: g.colRef(scope), Negated: g.rng.Intn(2) == 0, Sub: sub}
	default:
		sub := g.narrowQuery(depth, scope)
		return &Quantified{
			Negated: g.rng.Intn(4) == 0,
			Col:     g.colRef(scope),
			Op:      g.op(),
			All:     g.rng.Intn(2) == 0,
			Sub:     sub,
		}
	}
}

// narrowQuery is query() constrained to a single-column select list.
func (g *astGen) narrowQuery(depth int, outer []string) *Query {
	q := g.query(depth, outer)
	q.Star = false
	q.GroupBy = nil
	q.Select = []SelectItem{{Col: g.colRef(blockAliases(q))}}
	return q
}

func blockAliases(q *Query) []string {
	var out []string
	for _, f := range q.From {
		out = append(out, f.Name())
	}
	return out
}

// TestPrinterRoundTrip is the printer's property test: for random ASTs q,
// Parse(Format(q)) must be structurally identical to q (via String), and
// Format must be a fixpoint.
func TestPrinterRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		g := &astGen{rng: rand.New(rand.NewSource(seed))}
		q := g.query(2, nil)
		text := Format(q)
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("seed %d: printed AST failed to parse: %v\n%s", seed, err, text)
		}
		if q.String() != q2.String() {
			t.Fatalf("seed %d: round trip changed the query\nbuilt:    %s\nreparsed: %s\nprinted:\n%s",
				seed, q, q2, text)
		}
		if Format(q2) != text {
			t.Fatalf("seed %d: Format is not a fixpoint\nfirst:\n%s\nsecond:\n%s", seed, text, Format(q2))
		}
	}
}
