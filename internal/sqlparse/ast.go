// Package sqlparse lexes and parses the SQL fragment supported by QueryVis
// (Fig. 4 of the paper): nested conjunctive queries with inequalities —
// SELECT/FROM/WHERE with conjunctions of selection predicates, join
// predicates, and [NOT] EXISTS / [NOT] IN / op ALL / op ANY subqueries —
// plus the GROUP BY + aggregate extension exercised by the user study.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Op is a comparison operator: one of <, <=, =, <>, >=, >.
type Op int

const (
	OpLt Op = iota
	OpLe
	OpEq
	OpNe
	OpGe
	OpGt
)

// String renders the operator in SQL syntax.
func (o Op) String() string {
	switch o {
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpGe:
		return ">="
	case OpGt:
		return ">"
	}
	return "?"
}

// Flip returns the operator with its operands swapped, i.e. the op' such
// that (a op b) == (b op' a). Used by the diagram builder when the arrow
// rules force an edge direction that opposes operand order (Section 4.5.1).
func (o Op) Flip() Op {
	switch o {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	}
	return o // = and <> are symmetric
}

// Negate returns the logical complement of the operator under 2-valued
// logic, i.e. the op' such that (a op b) == !(a op' b).
func (o Op) Negate() Op {
	switch o {
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpGe:
		return OpLt
	case OpGt:
		return OpLe
	}
	return o
}

// Agg is an aggregate function applied to a select-list item.
type Agg int

const (
	AggNone Agg = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String renders the aggregate keyword, or "" for AggNone.
func (a Agg) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return ""
}

// ColumnRef is a possibly table-qualified column reference such as
// "L1.drinker" or "drinker". Table holds the alias or table name as
// written, or "" when unqualified.
type ColumnRef struct {
	Table  string
	Column string
}

// String renders the reference in SQL syntax.
func (c ColumnRef) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Constant is a string or numeric literal.
type Constant struct {
	IsString bool
	Str      string  // string value when IsString
	Num      float64 // numeric value when !IsString
	Raw      string  // literal text as written (for faithful printing)
}

// String renders the constant in SQL syntax.
func (c Constant) String() string {
	if c.IsString {
		return "'" + strings.ReplaceAll(c.Str, "'", "''") + "'"
	}
	if c.Raw != "" {
		return c.Raw
	}
	return strconv.FormatFloat(c.Num, 'g', -1, 64)
}

// NumberConst builds a numeric constant.
func NumberConst(v float64) Constant {
	return Constant{Num: v, Raw: strconv.FormatFloat(v, 'g', -1, 64)}
}

// StringConst builds a string constant.
func StringConst(s string) Constant {
	return Constant{IsString: true, Str: s}
}

// Operand is either a column reference or a constant (exactly one is
// set). A column operand may carry a numeric Offset, supporting the
// arithmetic predicates the paper lists as future work: "T.a + 5 < S.b"
// parses as a column operand with Offset 5.
type Operand struct {
	Col    *ColumnRef
	Const  *Constant
	Offset float64 // additive shift; only meaningful with Col
}

// IsConst reports whether the operand is a constant.
func (o Operand) IsConst() bool { return o.Const != nil }

// String renders the operand in SQL syntax.
func (o Operand) String() string {
	if o.Col != nil {
		return o.Col.String() + offsetSuffix(o.Offset)
	}
	if o.Const != nil {
		return o.Const.String()
	}
	return "?"
}

// offsetSuffix renders " + k" / " - k" for a nonzero offset.
func offsetSuffix(k float64) string {
	switch {
	case k > 0:
		return " + " + strconv.FormatFloat(k, 'g', -1, 64)
	case k < 0:
		return " - " + strconv.FormatFloat(-k, 'g', -1, 64)
	}
	return ""
}

// ColOperand builds a column operand.
func ColOperand(table, column string) Operand {
	return Operand{Col: &ColumnRef{Table: table, Column: column}}
}

// ConstOperand builds a constant operand.
func ConstOperand(c Constant) Operand { return Operand{Const: &c} }

// TableRef is a FROM-clause item: a table with an optional alias.
type TableRef struct {
	Table string
	Alias string // "" when no alias was written
}

// Name returns the name that predicates use to refer to this table: the
// alias if present, otherwise the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// String renders the reference in SQL syntax.
func (t TableRef) String() string {
	if t.Alias == "" {
		return t.Table
	}
	return t.Table + " " + t.Alias
}

// SelectItem is one select-list entry: a column, optionally wrapped in an
// aggregate, or an aggregate over * (COUNT(*)).
type SelectItem struct {
	Agg  Agg
	Star bool // COUNT(*); only valid with Agg == AggCount
	Col  ColumnRef
}

// String renders the item in SQL syntax.
func (s SelectItem) String() string {
	if s.Agg == AggNone {
		return s.Col.String()
	}
	if s.Star {
		return s.Agg.String() + "(*)"
	}
	return s.Agg.String() + "(" + s.Col.String() + ")"
}

// Predicate is a WHERE-clause conjunct: a comparison, an existential
// subquery, a membership subquery, or a quantified subquery.
type Predicate interface {
	isPredicate()
	String() string
}

// Compare is "exp1 op exp2" where at most one side is a constant.
type Compare struct {
	Left  Operand
	Op    Op
	Right Operand
}

func (*Compare) isPredicate() {}

func (p *Compare) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// IsSelection reports whether the comparison involves a constant
// (a selection predicate); otherwise it is a join predicate.
func (p *Compare) IsSelection() bool {
	return p.Left.IsConst() || p.Right.IsConst()
}

// Exists is "[NOT] EXISTS (subquery)".
type Exists struct {
	Negated bool
	Sub     *Query
}

func (*Exists) isPredicate() {}

func (p *Exists) String() string {
	kw := "EXISTS"
	if p.Negated {
		kw = "NOT EXISTS"
	}
	return kw + " (" + p.Sub.compactString() + ")"
}

// In is "col [NOT] IN (subquery)".
type In struct {
	Col     ColumnRef
	Negated bool
	Sub     *Query
}

func (*In) isPredicate() {}

func (p *In) String() string {
	kw := "IN"
	if p.Negated {
		kw = "NOT IN"
	}
	return p.Col.String() + " " + kw + " (" + p.Sub.compactString() + ")"
}

// Quantified is "col op ALL (subquery)" or "col op ANY (subquery)",
// optionally under an outer NOT (as in Fig. 24's "NOT S.sid = ANY (...)").
type Quantified struct {
	Negated bool
	Col     ColumnRef
	Op      Op
	All     bool // true for ALL, false for ANY
	Sub     *Query
}

func (*Quantified) isPredicate() {}

func (p *Quantified) String() string {
	kw := "ANY"
	if p.All {
		kw = "ALL"
	}
	s := fmt.Sprintf("%s %s %s (%s)", p.Col.String(), p.Op, kw, p.Sub.compactString())
	if p.Negated {
		return "NOT " + s
	}
	return s
}

// Query is one query block: SELECT list (or *), FROM list, a conjunction
// of WHERE predicates, and an optional GROUP BY list.
type Query struct {
	Star    bool
	Select  []SelectItem
	From    []TableRef
	Where   []Predicate
	GroupBy []ColumnRef
}

// compactString renders the query on one line (used inside predicates).
func (q *Query) compactString() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Star {
		b.WriteString("*")
	} else {
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
	}
	b.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	return b.String()
}

// String renders the query on one line.
func (q *Query) String() string { return q.compactString() }

// Subqueries returns the immediate subqueries of this query block, in
// WHERE-clause order.
func (q *Query) Subqueries() []*Query {
	var subs []*Query
	for _, p := range q.Where {
		switch p := p.(type) {
		case *Exists:
			subs = append(subs, p.Sub)
		case *In:
			subs = append(subs, p.Sub)
		case *Quantified:
			subs = append(subs, p.Sub)
		}
	}
	return subs
}

// PredicateCount returns the total number of WHERE-clause conjuncts
// across this block and every nested subquery block.
func (q *Query) PredicateCount() int {
	n := len(q.Where)
	for _, s := range q.Subqueries() {
		n += s.PredicateCount()
	}
	return n
}

// NestingDepth returns the maximum subquery nesting depth: 0 for a flat
// query, 1 if it has subqueries with no further nesting, and so on.
func (q *Query) NestingDepth() int {
	max := 0
	for _, s := range q.Subqueries() {
		if d := s.NestingDepth() + 1; d > max {
			max = d
		}
	}
	return max
}
