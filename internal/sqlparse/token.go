package sqlparse

import (
	"context"
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokSemi
	tokStar
	tokLt
	tokLe
	tokEq
	tokNe
	tokGe
	tokGt
	tokPlus
	tokMinus
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokSemi:
		return "';'"
	case tokStar:
		return "'*'"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokEq:
		return "'='"
	case tokNe:
		return "'<>'"
	case tokGe:
		return "'>='"
	case tokGt:
		return "'>'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	}
	return "unknown token"
}

// token is one lexical token with its source position (1-based line/col).
type token struct {
	kind tokenKind
	text string // identifier text, number literal, or unquoted string body
	line int
	col  int
}

// keyword reports whether the token is the given SQL keyword
// (case-insensitive).
func (t token) keyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// lexer turns SQL text into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance()
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			line, col := l.line, l.col
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return l.errorf(line, col, "unterminated block comment")
				}
				if l.src[l.pos] == '*' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.advance()
	mk := func(k tokenKind, text string) (token, error) {
		return token{kind: k, text: text, line: line, col: col}, nil
	}
	switch {
	case c == '(':
		return mk(tokLParen, "(")
	case c == ')':
		return mk(tokRParen, ")")
	case c == ',':
		return mk(tokComma, ",")
	case c == '.':
		return mk(tokDot, ".")
	case c == ';':
		return mk(tokSemi, ";")
	case c == '*':
		return mk(tokStar, "*")
	case c == '+':
		return mk(tokPlus, "+")
	case c == '-':
		return mk(tokMinus, "-")
	case c == '<':
		switch l.peek() {
		case '=':
			l.advance()
			return mk(tokLe, "<=")
		case '>':
			l.advance()
			return mk(tokNe, "<>")
		}
		return mk(tokLt, "<")
	case c == '>':
		if l.peek() == '=' {
			l.advance()
			return mk(tokGe, ">=")
		}
		return mk(tokGt, ">")
	case c == '=':
		return mk(tokEq, "=")
	case c == '!':
		if l.peek() == '=' {
			l.advance()
			return mk(tokNe, "!=")
		}
		return token{}, l.errorf(line, col, "unexpected character %q", c)
	case c == '\'':
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(line, col, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '\'' {
				if l.peek() == '\'' { // '' escapes a quote
					l.advance()
					b.WriteByte('\'')
					continue
				}
				return mk(tokString, b.String())
			}
			b.WriteByte(ch)
		}
	case c >= '0' && c <= '9':
		var b strings.Builder
		b.WriteByte(c)
		seenDot := false
		for l.pos < len(l.src) {
			ch := l.peek()
			if ch >= '0' && ch <= '9' {
				b.WriteByte(l.advance())
				continue
			}
			// A '.' is part of the number only if followed by a digit;
			// this keeps "Likes.beer" style qualified names unambiguous.
			if ch == '.' && !seenDot && l.pos+1 < len(l.src) &&
				l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
				seenDot = true
				b.WriteByte(l.advance())
				continue
			}
			break
		}
		return mk(tokNumber, b.String())
	case isIdentStart(c):
		var b strings.Builder
		b.WriteByte(c)
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			b.WriteByte(l.advance())
		}
		return mk(tokIdent, b.String())
	}
	return token{}, l.errorf(line, col, "unexpected character %q", c)
}

// lexAll tokenizes the entire input.
func lexAll(src string) ([]token, error) {
	return lexAllContext(context.Background(), src)
}

// lexAllContext tokenizes the entire input, checking the context every
// few thousand tokens so lexing megabytes of input stays cancelable.
func lexAllContext(ctx context.Context, src string) ([]token, error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if len(toks)&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
