package sqlparse

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/schema"
)

// Binding associates one FROM-clause table alias with its schema table
// and the query block that introduced it.
type Binding struct {
	Alias string        // name predicates use (alias, or table name if no alias)
	Table *schema.Table // resolved schema table
	Block *Query        // query block whose FROM clause defines the alias
	Depth int           // nesting depth of Block (root = 0)
}

// Resolution is the result of resolving a query against a schema. It
// records, for every query block, its bindings, depth, and parent block.
// Resolve also rewrites the AST in place so that every column reference is
// alias-qualified with schema-canonical column casing.
type Resolution struct {
	Schema  *schema.Schema
	Root    *Query
	Blocks  map[*Query][]*Binding
	Depth   map[*Query]int
	Parent  map[*Query]*Query
	byAlias map[*Query]map[string]*Binding // visible scope at each block
	ctx     context.Context                // cancellation during resolution
}

// Binding returns the binding visible at the given block for an alias.
func (r *Resolution) Binding(block *Query, alias string) (*Binding, bool) {
	b, ok := r.byAlias[block][strings.ToLower(alias)]
	return b, ok
}

// AllBindings returns every binding in the query, outermost block first.
func (r *Resolution) AllBindings() []*Binding {
	var out []*Binding
	var walk func(q *Query)
	walk = func(q *Query) {
		out = append(out, r.Blocks[q]...)
		for _, s := range q.Subqueries() {
			walk(s)
		}
	}
	walk(r.Root)
	return out
}

// Resolve binds the query's table references and column references to the
// schema. On success the AST has been rewritten so that every ColumnRef
// carries the alias of its table and the schema-canonical column name.
func Resolve(q *Query, s *schema.Schema) (*Resolution, error) {
	return ResolveContext(context.Background(), q, s)
}

// ResolveContext is Resolve with cooperative cancellation: each query
// block checks ctx before resolving, so deeply nested or very wide
// queries stop promptly once the context is done.
func ResolveContext(ctx context.Context, q *Query, s *schema.Schema) (*Resolution, error) {
	r := &Resolution{
		Schema:  s,
		Root:    q,
		Blocks:  make(map[*Query][]*Binding),
		Depth:   make(map[*Query]int),
		Parent:  make(map[*Query]*Query),
		byAlias: make(map[*Query]map[string]*Binding),
		ctx:     ctx,
	}
	if err := r.resolveBlock(q, nil, 0, map[string]*Binding{}); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Resolution) resolveBlock(q *Query, parent *Query, depth int, outer map[string]*Binding) error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	if len(q.From) == 0 {
		return fmt.Errorf("query block at depth %d has an empty FROM clause", depth)
	}
	r.Depth[q] = depth
	if parent != nil {
		r.Parent[q] = parent
	}

	scope := make(map[string]*Binding, len(outer)+len(q.From))
	for k, v := range outer {
		scope[k] = v
	}
	local := make(map[string]*Binding, len(q.From))
	for i := range q.From {
		ref := &q.From[i]
		tbl, ok := r.Schema.Table(ref.Table)
		if !ok {
			return fmt.Errorf("unknown table %q (schema %s)", ref.Table, r.Schema.Name)
		}
		ref.Table = tbl.Name // canonicalize casing
		name := ref.Name()
		key := strings.ToLower(name)
		if _, dup := local[key]; dup {
			return fmt.Errorf("duplicate table alias %q in one FROM clause", name)
		}
		b := &Binding{Alias: name, Table: tbl, Block: q, Depth: depth}
		local[key] = b
		scope[key] = b // inner aliases shadow outer ones
		r.Blocks[q] = append(r.Blocks[q], b)
	}
	r.byAlias[q] = scope

	resolveCol := func(c *ColumnRef) error {
		if c.Table != "" {
			b, ok := scope[strings.ToLower(c.Table)]
			if !ok {
				return fmt.Errorf("unknown table alias %q", c.Table)
			}
			col, err := b.Table.Column(c.Column)
			if err != nil {
				return err
			}
			c.Table = b.Alias
			c.Column = col
			return nil
		}
		// Unqualified: prefer a unique match among local bindings, then
		// a unique match in the whole visible scope.
		match := func(bs map[string]*Binding) (*Binding, int) {
			var found *Binding
			n := 0
			for _, b := range bs {
				if b.Table.HasColumn(c.Column) {
					found = b
					n++
				}
			}
			return found, n
		}
		b, n := match(local)
		if n == 0 {
			b, n = match(scope)
		}
		switch {
		case n == 0:
			return fmt.Errorf("column %q not found in any table in scope", c.Column)
		case n > 1:
			return fmt.Errorf("ambiguous column %q: qualify it with a table alias", c.Column)
		}
		col, err := b.Table.Column(c.Column)
		if err != nil {
			return err
		}
		c.Table = b.Alias
		c.Column = col
		return nil
	}
	resolveOperand := func(o *Operand) error {
		if o.Col != nil {
			return resolveCol(o.Col)
		}
		return nil
	}

	for i := range q.Select {
		if q.Select[i].Star {
			continue
		}
		if err := resolveCol(&q.Select[i].Col); err != nil {
			return fmt.Errorf("select list: %w", err)
		}
	}
	for i := range q.GroupBy {
		if err := resolveCol(&q.GroupBy[i]); err != nil {
			return fmt.Errorf("GROUP BY: %w", err)
		}
	}
	for _, p := range q.Where {
		switch p := p.(type) {
		case *Compare:
			if err := resolveOperand(&p.Left); err != nil {
				return err
			}
			if err := resolveOperand(&p.Right); err != nil {
				return err
			}
		case *Exists:
			if err := r.resolveBlock(p.Sub, q, depth+1, scope); err != nil {
				return err
			}
		case *In:
			if err := resolveCol(&p.Col); err != nil {
				return err
			}
			if err := r.resolveBlock(p.Sub, q, depth+1, scope); err != nil {
				return err
			}
			if err := checkSingleColumnSub(p.Sub); err != nil {
				return fmt.Errorf("IN subquery: %w", err)
			}
		case *Quantified:
			if err := resolveCol(&p.Col); err != nil {
				return err
			}
			if err := r.resolveBlock(p.Sub, q, depth+1, scope); err != nil {
				return err
			}
			if err := checkSingleColumnSub(p.Sub); err != nil {
				return fmt.Errorf("quantified subquery: %w", err)
			}
		}
	}
	return nil
}

// checkSingleColumnSub verifies that a membership/quantified subquery
// selects exactly one plain column, which the desugaring into EXISTS form
// requires.
func checkSingleColumnSub(q *Query) error {
	if q.Star {
		return fmt.Errorf("subquery must select a single column, not *")
	}
	if len(q.Select) != 1 {
		return fmt.Errorf("subquery must select exactly one column, got %d", len(q.Select))
	}
	if q.Select[0].Agg != AggNone {
		return fmt.Errorf("subquery select list must not use aggregates")
	}
	return nil
}
