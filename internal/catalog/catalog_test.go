package catalog

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/schema"
)

// fill adds the nine Appendix-G queries under names like "sailors/only".
func fill(t *testing.T, c *Catalog) {
	t.Helper()
	for _, g := range corpus.AppendixG() {
		name := g.Schema.Name + "/" + g.Pattern.String()
		if _, err := c.Add(name, g.SQL, g.Schema); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestCatalogGroupsByPattern(t *testing.T) {
	c := New()
	fill(t, c)
	if c.Len() != 9 {
		t.Fatalf("Len = %d, want 9", c.Len())
	}
	groups := c.Groups()
	if len(groups) != 3 {
		t.Fatalf("got %d pattern groups, want 3 (no/only/all):", len(groups))
	}
	for _, g := range groups {
		if len(g.Entries) != 3 {
			t.Errorf("group %q has %d entries, want 3", g.Key[:20], len(g.Entries))
		}
		// The three entries of one group span the three schemas.
		schemas := map[string]bool{}
		pattern := ""
		for _, e := range g.Entries {
			schemas[e.Schema.Name] = true
			p := strings.Split(e.Name, "/")[1]
			if pattern == "" {
				pattern = p
			} else if pattern != p {
				t.Errorf("group mixes patterns %s and %s", pattern, p)
			}
		}
		if len(schemas) != 3 {
			t.Errorf("group does not span all three schemas: %v", schemas)
		}
	}
}

func TestSimilarTo(t *testing.T) {
	c := New()
	fill(t, c)
	sim := c.SimilarTo("sailors/only")
	if len(sim) != 2 {
		t.Fatalf("got %d similar queries, want 2", len(sim))
	}
	names := map[string]bool{}
	for _, e := range sim {
		names[e.Name] = true
	}
	if !names["students/only"] || !names["actors/only"] {
		t.Errorf("similar set = %v", names)
	}
	if got := c.SimilarTo("nope"); got != nil {
		t.Error("unknown name should return nil")
	}
}

func TestSimilarToSQLAdHoc(t *testing.T) {
	c := New()
	fill(t, c)
	// An ad-hoc query over a fourth, unseen schema with the "only" shape.
	s := schema.New("library")
	s.AddTable("Reader", "rid", "rname")
	s.AddTable("Borrows", "rid", "bid")
	s.AddTable("Book", "bid", "genre")
	adhoc := `SELECT R1.rname FROM Reader R1
		WHERE NOT EXISTS (SELECT * FROM Borrows B1 WHERE B1.rid = R1.rid
		  AND NOT EXISTS (SELECT * FROM Book K WHERE K.genre = 'scifi' AND B1.bid = K.bid))`
	sim, err := c.SimilarToSQL(adhoc, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sim) != 3 {
		t.Fatalf("got %d matches, want the 3 'only' queries", len(sim))
	}
	for _, e := range sim {
		if !strings.HasSuffix(e.Name, "/only") {
			t.Errorf("unexpected match %s", e.Name)
		}
	}
}

func TestDuplicateNamesRejected(t *testing.T) {
	c := New()
	s := schema.Sailors()
	const q = "SELECT S.sname FROM Sailor S"
	if _, err := c.Add("q", q, s); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add("q", q, s); err == nil {
		t.Error("duplicate name should be rejected")
	}
	if _, err := c.Add("bad", "not sql", s); err == nil {
		t.Error("invalid SQL should be rejected")
	}
	e, ok := c.Lookup("q")
	if !ok || e.SQL != q {
		t.Error("Lookup broken")
	}
}

func TestPatternKeyAgreesWithIsomorphism(t *testing.T) {
	// Keys are equal exactly when diagrams are Pattern-isomorphic, across
	// the whole Appendix-G grid.
	c := New()
	fill(t, c)
	for _, a := range c.entries {
		for _, b := range c.entries {
			sameKey := a.Key == b.Key
			iso := core.Isomorphic(a.Diagram, b.Diagram, core.Pattern)
			if sameKey != iso {
				t.Errorf("%s vs %s: key equality %v but isomorphism %v",
					a.Name, b.Name, sameKey, iso)
			}
		}
	}
}

func TestUniqueSetPatternReuse(t *testing.T) {
	// Section 1.1: the unique-set pattern over two different questions is
	// one bucket.
	c := New()
	beers := schema.Beers()
	if _, err := c.Add("unique-drinkers", corpus.Fig1UniqueSet, beers); err != nil {
		t.Fatal(err)
	}
	uniqueBars := strings.NewReplacer(
		"Likes", "Frequents", "drinker", "bar", "beer", "person",
	).Replace(corpus.Fig1UniqueSet)
	if _, err := c.Add("unique-bars", uniqueBars, beers); err != nil {
		t.Fatal(err)
	}
	if len(c.SimilarTo("unique-drinkers")) != 1 {
		t.Error("unique-set queries should share one pattern bucket")
	}
}
