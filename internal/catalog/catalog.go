// Package catalog implements the paper's motivating application
// (Section 1): browsing a repository of existing SQL queries by their
// *logical pattern*. Systems like CQMS, SQL QuerIE, DBease, and SQLshare
// let users re-use stored queries; QueryVis diagrams make the stored
// queries recognizable. The catalog indexes each stored query by the
// canonical fingerprint of its diagram's pattern, so all queries with the
// same logical shape — across schemas — land in one bucket, and
// look-alike queries can be retrieved in O(1) rather than by pairwise
// isomorphism tests.
package catalog

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/logictree"
	"repro/internal/schema"
	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// Entry is one stored query with its derived artifacts.
type Entry struct {
	Name    string
	SQL     string
	Schema  *schema.Schema
	Tree    *logictree.LT
	Diagram *core.Diagram
	Key     string // canonical pattern fingerprint
}

// Catalog is a pattern-indexed query repository.
type Catalog struct {
	entries []*Entry
	byKey   map[string][]*Entry
	byName  map[string]*Entry
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{
		byKey:  make(map[string][]*Entry),
		byName: make(map[string]*Entry),
	}
}

// Add parses, resolves, and indexes a query. Names must be unique.
func (c *Catalog) Add(name, sql string, s *schema.Schema) (*Entry, error) {
	if _, dup := c.byName[name]; dup {
		return nil, fmt.Errorf("catalog already has an entry named %q", name)
	}
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("%s: parse: %w", name, err)
	}
	r, err := sqlparse.Resolve(q, s)
	if err != nil {
		return nil, fmt.Errorf("%s: resolve: %w", name, err)
	}
	e, err := trc.Convert(q, r)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	lt := logictree.FromTRC(e).Flatten()
	d, err := core.Build(lt)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	entry := &Entry{
		Name: name, SQL: sql, Schema: s,
		Tree: lt, Diagram: d,
		Key: core.PatternKey(d),
	}
	c.entries = append(c.entries, entry)
	c.byKey[entry.Key] = append(c.byKey[entry.Key], entry)
	c.byName[name] = entry
	return entry, nil
}

// Len returns the number of stored queries.
func (c *Catalog) Len() int { return len(c.entries) }

// Lookup returns the entry with the given name.
func (c *Catalog) Lookup(name string) (*Entry, bool) {
	e, ok := c.byName[name]
	return e, ok
}

// SimilarTo returns every stored query sharing the entry's logical
// pattern, excluding the entry itself.
func (c *Catalog) SimilarTo(name string) []*Entry {
	e, ok := c.byName[name]
	if !ok {
		return nil
	}
	var out []*Entry
	for _, other := range c.byKey[e.Key] {
		if other != e {
			out = append(out, other)
		}
	}
	return out
}

// SimilarToSQL indexes an ad-hoc query (without storing it) and returns
// the stored queries sharing its pattern — "find a past query like this
// one".
func (c *Catalog) SimilarToSQL(sql string, s *schema.Schema) ([]*Entry, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	r, err := sqlparse.Resolve(q, s)
	if err != nil {
		return nil, err
	}
	e, err := trc.Convert(q, r)
	if err != nil {
		return nil, err
	}
	d, err := core.Build(logictree.FromTRC(e).Flatten())
	if err != nil {
		return nil, err
	}
	return append([]*Entry(nil), c.byKey[core.PatternKey(d)]...), nil
}

// Group is one pattern bucket.
type Group struct {
	Key     string
	Entries []*Entry
}

// Groups returns the pattern buckets, largest first (ties by key), each
// with entries in insertion order.
func (c *Catalog) Groups() []Group {
	out := make([]Group, 0, len(c.byKey))
	for k, es := range c.byKey {
		out = append(out, Group{Key: k, Entries: es})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Entries) != len(out[j].Entries) {
			return len(out[i].Entries) > len(out[j].Entries)
		}
		return out[i].Key < out[j].Key
	})
	return out
}
