// Package client is the minimal retrying HTTP client the QueryVis test
// harnesses and smoke scripts share: capped exponential backoff with
// jitter on transient failures (network errors, 429, 503), honoring the
// server's Retry-After hint when one is present.
//
// It exists so every harness that talks to the hardened daemon — the
// chaos suite, the CI smokes, the kill-storm test — retries the same
// way the server sheds: a 429 with Retry-After is an instruction, not an
// error, and scattering ad-hoc retry loops across tests guarantees at
// least one of them gets it wrong.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes the retry policy. Zero fields take the documented
// defaults.
type Config struct {
	// HTTPClient performs the individual attempts (default: a client
	// with a 30s timeout).
	HTTPClient *http.Client
	// MaxAttempts bounds total tries, first included (default 3).
	MaxAttempts int
	// BaseBackoff is the first retry's delay; each further retry doubles
	// it (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps any single wait, including one requested via
	// Retry-After — a harness must never be parked for minutes by a
	// misconfigured header (default 2s).
	MaxBackoff time.Duration
	// MaxElapsed caps the total wall-clock time Do spends on one request
	// across every attempt and backoff wait (0 = no cap). Callers with
	// somewhere else to go — the router failing over across ring nodes —
	// set this well below the full retry schedule: burning the whole
	// backoff ladder against one endpoint is time stolen from a healthy
	// neighbor.
	MaxElapsed time.Duration
	// Seed fixes the jitter stream for deterministic tests (0 seeds from
	// the backoff parameters; determinism, not entropy, is the point).
	Seed int64
	// Headers are stamped on every outgoing request (each attempt
	// included) unless the request already carries the header — a set
	// X-Request-Id, an Authorization bearer for the ring admin surface —
	// so a harness threads its identity through retries without wrapping
	// every call site.
	Headers map[string]string
	// RetryBudget, when > 0, caps retries with a token bucket: every
	// retry spends one token, every request that completes without
	// needing a retry refills RetryRefill tokens (never above
	// RetryBudget), and an empty bucket denies the retry — the last
	// response or error is returned as-is. The point is storm control:
	// during an outage every request fails, so per-request retry ladders
	// multiply offered load by MaxAttempts exactly when the backend can
	// least afford it. A budget refilled only by successes makes
	// amplification self-limiting — sustained failure exhausts it and
	// the client degrades to single attempts until the backend recovers.
	// Zero disables the budget (unlimited retries, prior behavior).
	RetryBudget float64
	// RetryRefill is the budget credit per retry-free success (default
	// 0.1 — one retry earned per ten clean requests). Ignored unless
	// RetryBudget > 0.
	RetryRefill float64
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{Timeout: 30 * time.Second}
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.RetryBudget > 0 && c.RetryRefill <= 0 {
		c.RetryRefill = 0.1
	}
	return c
}

// Client retries transient failures with capped, jittered backoff.
type Client struct {
	cfg Config

	requests     atomic.Int64
	attempts     atomic.Int64
	retries      atomic.Int64
	budgetSpent  atomic.Int64
	budgetDenied atomic.Int64

	mu     sync.Mutex
	rng    *rand.Rand
	tokens float64 // retry-budget bucket, guarded by mu
}

// Stats is a point-in-time snapshot of a Client's lifetime counters —
// the honest record a chaos harness or the router reads back to prove
// how much retrying actually happened.
type Stats struct {
	// Requests counts Do invocations.
	Requests int64 `json:"requests"`
	// Attempts counts individual HTTP sends, first tries included.
	Attempts int64 `json:"attempts"`
	// Retries counts attempts beyond each request's first — zero on a
	// healthy endpoint.
	Retries int64 `json:"retries"`
	// BudgetSpent counts retries paid for from the retry budget; always
	// zero when the budget is disabled.
	BudgetSpent int64 `json:"budget_spent"`
	// BudgetDenied counts retries the empty budget refused — each one a
	// request that would have amplified an outage and didn't.
	BudgetDenied int64 `json:"budget_denied"`
}

// Stats snapshots the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:     c.requests.Load(),
		Attempts:     c.attempts.Load(),
		Retries:      c.retries.Load(),
		BudgetSpent:  c.budgetSpent.Load(),
		BudgetDenied: c.budgetDenied.Load(),
	}
}

// New builds a Client from the config.
func New(cfg Config) *Client {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(cfg.BaseBackoff) + int64(cfg.MaxAttempts)
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(seed)), tokens: cfg.RetryBudget}
}

// spendRetry withdraws one token for a retry. True when the budget is
// disabled or a token was available; false — counted as a denial — when
// the bucket is dry and the retry must not happen.
func (c *Client) spendRetry() bool {
	if c.cfg.RetryBudget <= 0 {
		return true
	}
	c.mu.Lock()
	ok := c.tokens >= 1
	if ok {
		c.tokens--
	}
	c.mu.Unlock()
	if ok {
		c.budgetSpent.Add(1)
	} else {
		c.budgetDenied.Add(1)
	}
	return ok
}

// creditSuccess refills the budget for a request that completed without
// retrying — the only evidence that the backend is healthy enough to
// be worth retrying against.
func (c *Client) creditSuccess() {
	if c.cfg.RetryBudget <= 0 {
		return
	}
	c.mu.Lock()
	c.tokens = min(c.tokens+c.cfg.RetryRefill, c.cfg.RetryBudget)
	c.mu.Unlock()
}

// Do sends the request, retrying network errors and 429/503 responses
// up to MaxAttempts with capped exponential backoff plus jitter. A
// Retry-After header on a shed response raises the wait to at least the
// server's ask (still capped by MaxBackoff). Requests whose body cannot
// be replayed (no GetBody) are sent exactly once, and a dead request
// context is never retried — the caller canceled, and that decision
// stands.
// A MaxElapsed budget that a retry's wait would overrun stops the
// schedule early: the last response (or error) is returned as-is, so
// the caller can fail over instead of waiting out the ladder. With a
// RetryBudget configured, an exhausted token bucket ends the schedule
// the same way — last response or error as-is, never a new failure
// mode — so storm control degrades the client to single attempts
// rather than changing its contract.
func (c *Client) Do(req *http.Request) (*http.Response, error) {
	c.requests.Add(1)
	start := time.Now()
	overBudget := func(wait time.Duration) bool {
		return c.cfg.MaxElapsed > 0 && time.Since(start)+wait > c.cfg.MaxElapsed
	}
	for k, v := range c.cfg.Headers {
		if req.Header.Get(k) == "" {
			req.Header.Set(k, v)
		}
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		areq := req
		if attempt > 1 {
			c.retries.Add(1)
			areq = req.Clone(req.Context())
			// Bodyless requests (GET) have no GetBody rewinder and need
			// none; replayable() already refused retries for everything
			// else without one.
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, err
				}
				areq.Body = body
			}
		}
		c.attempts.Add(1)
		resp, err := c.cfg.HTTPClient.Do(areq)
		if err != nil {
			lastErr = err
			if req.Context().Err() != nil || attempt >= c.cfg.MaxAttempts || !replayable(req) {
				return nil, lastErr
			}
			if !c.spendRetry() {
				return nil, lastErr
			}
		} else {
			if !shedding(resp.StatusCode) || attempt >= c.cfg.MaxAttempts || !replayable(req) {
				if attempt == 1 && resp.StatusCode < http.StatusBadRequest {
					// A clean first-try success is the only evidence worth
					// refilling the retry budget on.
					c.creditSuccess()
				}
				return resp, nil
			}
			if !c.spendRetry() {
				return resp, nil
			}
			wait := c.backoff(attempt)
			if ra := retryAfter(resp); ra > wait {
				wait = ra
			}
			wait = min(wait, c.cfg.MaxBackoff)
			if overBudget(wait) {
				return resp, nil
			}
			// The response will be replaced; drain it so the transport can
			// reuse the connection.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			_ = resp.Body.Close()
			if err := sleep(req.Context(), wait); err != nil {
				return nil, err
			}
			continue
		}
		wait := c.backoff(attempt)
		if overBudget(wait) {
			return nil, lastErr
		}
		if err := sleep(req.Context(), wait); err != nil {
			return nil, lastErr
		}
	}
}

// Get issues a retried GET.
func (c *Client) Get(ctx context.Context, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return c.Do(req)
}

// PostJSON issues a retried POST with v as the JSON body.
func (c *Client) PostJSON(ctx context.Context, url string, v any) (*http.Response, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.Do(req)
}

// replayable reports whether the request can be sent again: bodyless, or
// carrying the GetBody rewinder http.NewRequest installs for in-memory
// bodies.
func replayable(req *http.Request) bool {
	return req.Body == nil || req.Body == http.NoBody || req.GetBody != nil
}

// shedding reports whether the status invites a retry: 429 (the load
// shedder) and 503 (a draining instance or a crashed-worker response,
// both explicitly safe to retry).
func shedding(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff computes the jittered wait before retry number attempt:
// base·2^(attempt-1), capped, then drawn uniformly from [d/2, d].
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return d/2 + time.Duration(c.rng.Int63n(int64(d/2)+1))
}

// retryAfter parses the Retry-After header: delta-seconds or an HTTP
// date; 0 when absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// sleep waits d or until ctx dies, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
