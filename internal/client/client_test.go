package client

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetriesSheddingThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		body, _ := io.ReadAll(r.Body)
		w.Write(body) // echo proves the body was replayed on the retry
	}))
	defer ts.Close()

	c := New(Config{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	resp, err := c.PostJSON(context.Background(), ts.URL, map[string]string{"k": "v"})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(raw), `"k":"v"`) {
		t.Fatalf("after retries: %d %q", resp.StatusCode, raw)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestExhaustedAttemptsReturnLastResponse(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(Config{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	resp, err := c.Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// The caller gets the shed response to inspect, not an error.
	if resp.StatusCode != http.StatusTooManyRequests || calls.Load() != 2 {
		t.Fatalf("status %d after %d calls, want 429 after 2", resp.StatusCode, calls.Load())
	}
}

func TestNonReplayableBodySentOnce(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(Config{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	// A raw Reader body carries no GetBody rewinder, so a retry would
	// replay garbage — the client must not try.
	req, err := http.NewRequest(http.MethodPost, ts.URL, io.NopCloser(strings.NewReader("x")))
	if err != nil {
		t.Fatal(err)
	}
	req.GetBody = nil
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 1 {
		t.Fatalf("non-replayable request sent %d times, want 1", calls.Load())
	}
}

func TestCanceledContextNeverRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(50 * time.Millisecond)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	c := New(Config{MaxAttempts: 3, BaseBackoff: time.Millisecond})
	start := time.Now()
	_, err := c.Get(ctx, ts.URL)
	if err == nil {
		t.Fatal("want error from dead context")
	}
	// One aborted attempt, no backoff-and-retry loop afterwards.
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("canceled request took %v — it retried", elapsed)
	}
}

func TestRetryAfterRaisesWaitWithinCap(t *testing.T) {
	var calls atomic.Int64
	var gap time.Duration
	var last time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if calls.Add(1) == 2 {
			gap = now.Sub(last)
		}
		last = now
		if calls.Load() == 1 {
			w.Header().Set("Retry-After", "1") // 1s ask, capped to 100ms below
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
	}))
	defer ts.Close()

	c := New(Config{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 100 * time.Millisecond})
	resp, err := c.Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	// The wait honored the server's ask up to the cap: well above the
	// ~1ms computed backoff, but nowhere near the full 1s.
	if gap < 50*time.Millisecond || gap > 500*time.Millisecond {
		t.Fatalf("retry gap %v, want ~100ms (capped Retry-After)", gap)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	c := New(Config{BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second})
	for attempt := 1; attempt <= 5; attempt++ {
		want := c.cfg.BaseBackoff << (attempt - 1)
		if want > c.cfg.MaxBackoff {
			want = c.cfg.MaxBackoff
		}
		for i := 0; i < 100; i++ {
			if d := c.backoff(attempt); d < want/2 || d > want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
}

// TestMaxElapsedStopsRetrySchedule: a budget smaller than the next wait
// ends the schedule early — the caller gets the last shed response to
// fail over with, instead of being parked for the full ladder.
func TestMaxElapsedStopsRetrySchedule(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1") // asks for a 1s wait every time
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(Config{
		MaxAttempts: 10,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Second,
		MaxElapsed:  50 * time.Millisecond,
	})
	start := time.Now()
	resp, err := c.Get(context.Background(), ts.URL)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want the shed 503 back", resp.StatusCode)
	}
	// The 1s Retry-After would blow the 50ms budget on the very first
	// retry, so exactly one attempt happens and Do returns promptly.
	if calls.Load() != 1 {
		t.Fatalf("server saw %d calls, want 1 (budget forbids the wait)", calls.Load())
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("Do took %v despite a 50ms budget", elapsed)
	}
}

// TestStatsCountsAttemptsAndRetries: the counters record what actually
// went over the wire.
func TestStatsCountsAttemptsAndRetries(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c := New(Config{MaxAttempts: 5, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	resp, err := c.Get(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = c.Get(context.Background(), ts.URL) // healthy now: no retry
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	want := Stats{Requests: 2, Attempts: 4, Retries: 2}
	if got := c.Stats(); got != want {
		t.Fatalf("Stats() = %+v, want %+v", got, want)
	}
}

// TestConfiguredHeadersStampEveryAttempt: Config.Headers land on the
// first try and every retry, but never clobber a header the caller set
// on the request itself.
func TestConfiguredHeadersStampEveryAttempt(t *testing.T) {
	var calls atomic.Int64
	seen := make(chan [2]string, 4)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen <- [2]string{r.Header.Get("X-Request-Id"), r.Header.Get("Authorization")}
		if calls.Add(1) < 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
	}))
	defer ts.Close()

	c := New(Config{
		MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		Headers: map[string]string{
			"X-Request-Id":  "cfg-id",
			"Authorization": "Bearer cfg-token",
		},
	})
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-id") // caller wins over config
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for i := 0; i < 2; i++ {
		got := <-seen
		if got[0] != "caller-id" || got[1] != "Bearer cfg-token" {
			t.Fatalf("attempt %d saw headers %q", i+1, got)
		}
	}
}

func TestRetryBudgetCapsStorm(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable) // total outage
	}))
	defer ts.Close()

	c := New(Config{
		MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		RetryBudget: 2, RetryRefill: 1,
	})
	// Request 1: 3 attempts — 2 retries drain the whole budget.
	resp, err := c.Do(mustGet(t, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := calls.Load(); got != 3 {
		t.Fatalf("first request: server saw %d calls, want 3", got)
	}
	// Requests 2..4: the bucket is dry; each sends exactly one attempt
	// and returns the shed response as-is instead of amplifying.
	for i := 0; i < 3; i++ {
		resp, err := c.Do(mustGet(t, ts.URL))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("denied retry changed the response: %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	if got := calls.Load(); got != 6 {
		t.Fatalf("after denied retries: server saw %d calls, want 6 (3+1+1+1)", got)
	}
	st := c.Stats()
	if st.BudgetSpent != 2 || st.BudgetDenied != 3 {
		t.Fatalf("budget counters: %+v, want spent=2 denied=3", st)
	}
}

func TestRetryBudgetRefillsOnSuccess(t *testing.T) {
	var fail atomic.Bool
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if fail.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	}))
	defer ts.Close()

	c := New(Config{
		MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond,
		RetryBudget: 1, RetryRefill: 1,
	})
	get := func() *http.Response {
		t.Helper()
		resp, err := c.Do(mustGet(t, ts.URL))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Drain the one-token budget during an outage.
	fail.Store(true)
	get()
	if st := c.Stats(); st.BudgetSpent != 1 {
		t.Fatalf("expected the single token spent: %+v", st)
	}
	get() // dry: single attempt, denied
	if st := c.Stats(); st.BudgetDenied != 1 {
		t.Fatalf("expected a denial while dry: %+v", st)
	}
	// One clean success refills a full token (refill=1)...
	fail.Store(false)
	get()
	// ...so the next outage request may retry exactly once again.
	fail.Store(true)
	before := calls.Load()
	get()
	if got := calls.Load() - before; got != 2 {
		t.Fatalf("refilled budget should allow one retry: saw %d attempts", got)
	}
	if st := c.Stats(); st.BudgetSpent != 2 {
		t.Fatalf("refilled token not spent: %+v", st)
	}
}

func mustGet(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}
