// Package inverse maps QueryVis diagrams back to logic trees, making the
// paper's Proposition 5.1 (unambiguity) executable: for any valid diagram
// — one generated from a non-degenerate query of nesting depth at most 3 —
// there is exactly one logic tree that maps to it.
//
// Recovery works on the ∄-form diagrams the paper's Appendix B proof
// covers (every non-root table group carries a dashed box); a simplified
// (∀) diagram is handled by de-simplifying its logic tree first, see
// logictree.Unsimplify.
//
// The recovery engine is a complete constraint search: it enumerates
// every rooted tree over the diagram's table groups that is consistent
// with the arrow rules, the depth bound, and the non-degeneracy
// Properties 5.1/5.2, and demands exactly one survivor. This subsumes the
// paper's case analysis — the depth-0/1/2 decompositions of Appendix B.2
// are exposed separately (DecomposeAtRoot) and the exhaustive path-pattern
// enumeration of Appendix B.1 is implemented in patterns.go.
package inverse

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/logictree"
	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// AmbiguityError reports that a diagram admitted zero or several logic
// trees.
type AmbiguityError struct {
	Solutions int
}

func (e *AmbiguityError) Error() string {
	if e.Solutions == 0 {
		return "diagram admits no consistent logic tree"
	}
	return fmt.Sprintf("diagram is ambiguous: %d consistent logic trees", e.Solutions)
}

// DefaultSearchBudget is the node budget production callers (the facade's
// Verify mode) use when they pass budget 0. The search space over n table
// groups is (n-1)^(n-1) parent assignments; every valid paper query stays
// below a few hundred nodes, so half a million is two-plus orders of
// magnitude of headroom while still bounding an adversarial diagram to
// milliseconds of work.
const DefaultSearchBudget = 500_000

// BudgetError reports that the constraint search was stopped after
// spending its node budget without completing the enumeration. It is a
// resource verdict, not a correctness one: the diagram may well be
// unambiguous, but proving it was too expensive under the given budget.
type BudgetError struct {
	Nodes  int // search nodes visited before stopping
	Budget int // the budget that was exhausted
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("inverse search budget exhausted: %d nodes visited (budget %d)", e.Nodes, e.Budget)
}

// search carries the per-call resource accounting of the constraint
// enumeration: a visited-node counter checked against the budget, and an
// amortized context check (one ctx.Err() poll every 256 nodes, so the
// unbounded fast path stays an increment).
type search struct {
	ctx    context.Context
	budget int // <= 0: unbounded
	nodes  int
	err    error // first budget/context error; sticky
}

// step accounts for one visited search node. It returns a non-nil error —
// sticky across calls — once the budget is exhausted or the context is
// done.
func (st *search) step() error {
	if st.err != nil {
		return st.err
	}
	st.nodes++
	if st.budget > 0 && st.nodes > st.budget {
		st.err = &BudgetError{Nodes: st.nodes, Budget: st.budget}
		return st.err
	}
	if st.ctx != nil && st.nodes&255 == 0 {
		if err := st.ctx.Err(); err != nil {
			st.err = err
			return st.err
		}
	}
	return nil
}

// graph is the group-level view of a diagram used during recovery.
type graph struct {
	d      *core.Diagram
	groups [][]int     // group index -> table IDs; groups[0] is the root
	boxOf  []trc.Quant // quantifier per group (root: ∃)
	gOf    map[int]int // table ID -> group index
	// directed cross-group edges, as (fromGroup, toGroup) pairs with the
	// originating diagram edge.
	edges []groupEdge
}

type groupEdge struct {
	from, to int // group indices
	e        core.Edge
}

// buildGraph extracts groups and cross-group arrows from a diagram. It
// fails when the diagram is not in ∄ form.
func buildGraph(d *core.Diagram) (*graph, error) {
	g := &graph{d: d, gOf: map[int]int{}}

	// The root group: unboxed tables. Everything else must sit in a ∄ box.
	var root []int
	for _, t := range d.Tables[1:] {
		if d.BoxOf(t.ID) == nil {
			root = append(root, t.ID)
		}
	}
	if len(root) == 0 {
		return nil, fmt.Errorf("diagram has no unboxed root tables")
	}
	g.groups = append(g.groups, root)
	g.boxOf = append(g.boxOf, trc.Exists)
	for _, id := range root {
		g.gOf[id] = 0
	}
	for _, b := range d.Boxes {
		if b.Quant == trc.ForAll {
			return nil, fmt.Errorf("diagram is in ∀ form; recovery is defined for ∄-form diagrams (de-simplify first)")
		}
		idx := len(g.groups)
		g.groups = append(g.groups, append([]int(nil), b.Tables...))
		g.boxOf = append(g.boxOf, b.Quant)
		for _, id := range b.Tables {
			g.gOf[id] = idx
		}
	}
	for _, e := range d.Edges {
		if e.Kind == core.EdgeSelect {
			continue
		}
		gf, gt := g.gOf[e.From.Table], g.gOf[e.To.Table]
		if gf == gt {
			continue
		}
		if !e.Directed {
			return nil, fmt.Errorf("undirected edge between distinct groups %d and %d", gf, gt)
		}
		g.edges = append(g.edges, groupEdge{from: gf, to: gt, e: e})
	}
	return g, nil
}

// consistent reports whether a parent assignment (parent[i] for each
// non-root group; parent[0] = -1) yields depths and ancestry that satisfy
// the arrow rules for every cross-group edge.
func (g *graph) consistent(parent []int) bool {
	n := len(g.groups)
	depth := make([]int, n)
	depth[0] = 0
	// Compute depths; detect cycles and the depth bound.
	for i := 1; i < n; i++ {
		d, v := 0, i
		for v != 0 {
			v = parent[v]
			d++
			if d > n {
				return false // cycle
			}
		}
		depth[i] = d
		if d > logictree.MaxSupportedDepth {
			return false
		}
	}
	anc := func(a, b int) bool { // a is a proper ancestor of b
		for b != 0 {
			b = parent[b]
			if b == a {
				return true
			}
		}
		return a == 0
	}
	for _, ge := range g.edges {
		u, v := ge.from, ge.to
		du, dv := depth[u], depth[v]
		switch {
		case dv == du+1 && anc(u, v):
			// shallower → one-level-deeper descendant: ok
		case du >= dv+2 && anc(v, u):
			// deeper (≥2 levels) → ancestor: ok
		default:
			return false
		}
	}
	return true
}

// ltFromAssignment materializes the logic tree implied by a parent
// assignment.
func (g *graph) ltFromAssignment(parent []int) *logictree.LT {
	n := len(g.groups)
	nodes := make([]*logictree.Node, n)
	depth := make([]int, n)
	for i := 0; i < n; i++ {
		nodes[i] = &logictree.Node{Quant: g.boxOf[i]}
		for _, id := range g.groups[i] {
			t := g.d.Table(id)
			v := t.Var
			if v == "" {
				v = fmt.Sprintf("T%d", id)
			}
			nodes[i].Tables = append(nodes[i].Tables, logictree.Table{
				Var: v, Relation: t.Name,
			})
		}
	}
	for i := 1; i < n; i++ {
		nodes[parent[i]].Children = append(nodes[parent[i]].Children, nodes[i])
		d, v := 0, i
		for v != 0 {
			v = parent[v]
			d++
		}
		depth[i] = d
	}

	varOf := func(id int, row int) trc.Attr {
		t := g.d.Table(id)
		v := t.Var
		if v == "" {
			v = fmt.Sprintf("T%d", id)
		}
		return trc.Attr{Var: v, Column: t.Rows[row].Attr}
	}

	// Join predicates: each cross-group edge belongs to the deeper group's
	// node; same-group edges belong to their own node.
	for _, e := range g.d.Edges {
		if e.Kind == core.EdgeSelect {
			continue
		}
		gf, gt := g.gOf[e.From.Table], g.gOf[e.To.Table]
		la := varOf(e.From.Table, e.From.Row)
		ra := varOf(e.To.Table, e.To.Row)
		p := trc.Pred{
			Left:  trc.Term{Attr: &la},
			Op:    e.Op,
			Right: trc.Term{Attr: &ra, Offset: e.Offset},
		}
		owner := gf
		if depth[gt] > depth[gf] {
			owner = gt
		}
		nodes[owner].Preds = append(nodes[owner].Preds, p)
	}
	// Selection rows.
	for _, t := range g.d.Tables[1:] {
		for _, r := range t.Rows {
			if r.Kind != core.RowSelection {
				continue
			}
			v := t.Var
			if v == "" {
				v = fmt.Sprintf("T%d", t.ID)
			}
			a := trc.Attr{Var: v, Column: r.Attr}
			c := parseConst(r.Value)
			nodes[g.gOf[t.ID]].Preds = append(nodes[g.gOf[t.ID]].Preds, trc.Pred{
				Left:  trc.Term{Attr: &a, Offset: r.Offset},
				Op:    r.Op,
				Right: trc.Term{Const: &c},
			})
		}
	}

	lt := &logictree.LT{Root: nodes[0]}
	// SELECT box rows and edges.
	sel := g.d.Table(core.SelectBoxID)
	targets := map[int]core.EdgeEnd{} // select row -> target end
	for _, e := range g.d.Edges {
		if e.Kind == core.EdgeSelect {
			targets[e.From.Row] = e.To
		}
	}
	for i, r := range sel.Rows {
		item := trc.SelectItem{Agg: r.Agg, Star: r.Star}
		if end, ok := targets[i]; ok {
			item.Attr = varOf(end.Table, end.Row)
			item.Attr.Column = r.Attr
		}
		lt.Select = append(lt.Select, item)
	}
	for _, t := range g.d.Tables[1:] {
		for ri, r := range t.Rows {
			if r.Kind == core.RowGroupBy {
				lt.GroupBy = append(lt.GroupBy, varOf(t.ID, ri))
			}
		}
	}
	return lt
}

// parseConst re-parses a rendered constant from a selection row.
func parseConst(s string) sqlparse.Constant {
	if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		out := make([]byte, 0, len(body))
		for i := 0; i < len(body); i++ {
			out = append(out, body[i])
			if body[i] == '\'' && i+1 < len(body) && body[i+1] == '\'' {
				i++
			}
		}
		return sqlparse.StringConst(string(out))
	}
	var f float64
	if _, err := fmt.Sscanf(s, "%g", &f); err == nil {
		c := sqlparse.NumberConst(f)
		c.Raw = s
		return c
	}
	return sqlparse.StringConst(s)
}

// Solutions returns every logic tree consistent with the diagram that is
// also a valid non-degenerate tree. Valid diagrams have exactly one.
// The enumeration is exhaustive and unbounded; production callers should
// use SolutionsContext with a budget.
func Solutions(d *core.Diagram) ([]*logictree.LT, error) {
	return solutions(context.Background(), d, true, 0)
}

// SolutionsContext is Solutions under a context and a search-node budget.
// budget 0 selects DefaultSearchBudget; a negative budget disables the
// bound. When the budget runs out the enumeration stops with a
// *BudgetError; when the context is done it stops promptly with the
// context's error.
func SolutionsContext(ctx context.Context, d *core.Diagram, budget int) ([]*logictree.LT, error) {
	if budget == 0 {
		budget = DefaultSearchBudget
	}
	return solutions(ctx, d, true, budget)
}

// SolutionsRelaxed is Solutions without the non-degeneracy filter
// (Properties 5.1/5.2): candidate trees only have to satisfy the arrow
// rules and the depth bound. It exists to demonstrate the paper's
// Section 5 point that the SQL fragment *can* produce ambiguous diagrams
// — degenerate queries may admit several relaxed solutions — so the
// non-degeneracy properties are what buy unambiguity.
func SolutionsRelaxed(d *core.Diagram) ([]*logictree.LT, error) {
	return solutions(context.Background(), d, false, 0)
}

func solutions(ctx context.Context, d *core.Diagram, validate bool, budget int) ([]*logictree.LT, error) {
	out, _, err := solutionsN(ctx, d, validate, budget)
	return out, err
}

// solutionsN is solutions, additionally reporting the number of search
// nodes visited — the cost actually spent against the budget.
func solutionsN(ctx context.Context, d *core.Diagram, validate bool, budget int) ([]*logictree.LT, int, error) {
	g, err := buildGraph(d)
	if err != nil {
		return nil, 0, err
	}
	st := &search{ctx: ctx, budget: budget}
	n := len(g.groups)
	var out []*logictree.LT
	seen := map[string]bool{}
	parent := make([]int, n)
	parent[0] = -1

	var rec func(i int) error
	rec = func(i int) error {
		if err := st.step(); err != nil {
			return err
		}
		if i == n {
			if !g.consistent(parent) {
				return nil
			}
			lt := g.ltFromAssignment(parent)
			if validate && lt.Validate() != nil {
				return nil
			}
			key := lt.Canonical()
			if !seen[key] {
				seen[key] = true
				out = append(out, lt)
			}
			return nil
		}
		for p := 0; p < n; p++ {
			if p == i {
				continue
			}
			parent[i] = p
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(1); err != nil {
		return nil, st.nodes, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Canonical() < out[j].Canonical() })
	return out, st.nodes, nil
}

// Recover returns the unique logic tree for a valid diagram, or an
// AmbiguityError when the diagram admits zero or several. Like Solutions
// it is unbounded; the serving path uses RecoverContext.
func Recover(d *core.Diagram) (*logictree.LT, error) {
	return RecoverContext(context.Background(), d, -1)
}

// RecoverContext is Recover under a context and a search-node budget
// (0 selects DefaultSearchBudget, negative disables the bound). A search
// stopped by the budget returns a *BudgetError, and one stopped by the
// context returns the context's error — both distinct from the
// *AmbiguityError a completed search may report.
func RecoverContext(ctx context.Context, d *core.Diagram, budget int) (*logictree.LT, error) {
	lt, _, err := RecoverContextStats(ctx, d, budget)
	return lt, err
}

// RecoverContextStats is RecoverContext, additionally reporting how many
// search nodes the enumeration visited — the budget actually spent,
// whether or not the search completed. The telemetry layer annotates
// verify spans with it, turning "how close are we to the budget?" into a
// measured quantity instead of a binary exhausted/fine signal.
func RecoverContextStats(ctx context.Context, d *core.Diagram, budget int) (*logictree.LT, int, error) {
	if budget == 0 {
		budget = DefaultSearchBudget
	}
	sols, nodes, err := solutionsN(ctx, d, true, budget)
	if err != nil {
		return nil, nodes, err
	}
	if len(sols) != 1 {
		return nil, nodes, &AmbiguityError{Solutions: len(sols)}
	}
	return sols[0], nodes, nil
}

// DecomposeAtRoot implements the depth-0 decomposition of Appendix B.2.1:
// it removes the root group, splits the remainder into connected
// components, and returns the table-ID sets of each component with the
// root tables re-attached — each corresponds to one subtree of the LT
// root.
func DecomposeAtRoot(d *core.Diagram) ([][]int, error) {
	g, err := buildGraph(d)
	if err != nil {
		return nil, err
	}
	n := len(g.groups)
	// Union-find over non-root groups, joined by cross-group edges that
	// avoid the root.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range g.edges {
		if e.from != 0 && e.to != 0 {
			union(e.from, e.to)
		}
	}
	comps := map[int][]int{}
	var order []int
	for i := 1; i < n; i++ {
		r := find(i)
		if _, ok := comps[r]; !ok {
			order = append(order, r)
		}
		comps[r] = append(comps[r], i)
	}
	var out [][]int
	for _, r := range order {
		ids := append([]int(nil), g.groups[0]...)
		for _, gi := range comps[r] {
			ids = append(ids, g.groups[gi]...)
		}
		sort.Ints(ids)
		out = append(out, ids)
	}
	return out, nil
}
