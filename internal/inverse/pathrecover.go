package inverse

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/logictree"
)

// This file implements the *literal* Appendix B.1 recovery procedure for
// path diagrams: instead of searching over candidate trees (Solutions),
// the nesting depth of each table group is deduced directly from the
// pattern family — the case analysis the paper's proof walks through.
// RecoverPathDepths and the search-based recovery are tested against each
// other on all 16 valid patterns.

// PathDepths maps group index → recovered nesting depth.
type PathDepths map[int]int

// RecoverPathDepths recovers the depth of every table group of a diagram
// whose logic tree is a path (each block has at most one nested block),
// using the Appendix B.1 case analysis:
//
//   - the root group (depth 0) is identified by its missing box;
//   - family ⟨A,B⟩ (root has an outgoing edge to a group that itself has a
//     one-step outgoing edge): depths follow the A→B→D chain;
//   - family ⟨A,B̄⟩ (edge B absent): the depth-2 group is the one with no
//     incoming arrow; the depth-3 group is D's target;
//   - family ⟨Ā⟩ (edge A absent): edges B and C must be present; the
//     depth-2 group is the source of the C edge into the root, the
//     depth-1 group is the source of B's edge into depth 2.
//
// It fails for non-path diagrams (branching trees need the Appendix B.2
// decompositions, which Solutions handles generally).
func RecoverPathDepths(d *core.Diagram) (PathDepths, error) {
	g, err := buildGraph(d)
	if err != nil {
		return nil, err
	}
	n := len(g.groups)
	if n > 4 {
		return nil, fmt.Errorf("path recovery supports up to depth 3 (4 groups), got %d groups", n)
	}
	depths := PathDepths{0: 0}
	if n == 1 {
		return depths, nil
	}

	// Adjacency at the group level.
	out := make(map[int][]int)
	in := make(map[int][]int)
	has := func(from, to int) bool {
		for _, e := range g.edges {
			if e.from == from && e.to == to {
				return true
			}
		}
		return false
	}
	for _, e := range g.edges {
		out[e.from] = append(out[e.from], e.to)
		in[e.to] = append(in[e.to], e.from)
	}

	nonRoot := make([]int, 0, n-1)
	for i := 1; i < n; i++ {
		nonRoot = append(nonRoot, i)
	}

	switch len(nonRoot) {
	case 1:
		// Depth-1 only: the single boxed group is depth 1.
		depths[nonRoot[0]] = 1
		return depths, nil

	case 2:
		// Depths 1 and 2. Edge A (0→1) present: follow it. Otherwise the
		// Ā family requires B (1→2) and C (2→0): depth 2 is the group
		// with an edge into the root.
		for _, v := range nonRoot {
			if has(0, v) {
				depths[v] = 1
				for _, w := range nonRoot {
					if w != v {
						depths[w] = 2
					}
				}
				return depths, nil
			}
		}
		for _, v := range nonRoot {
			if has(v, 0) {
				depths[v] = 2
				for _, w := range nonRoot {
					if w != v {
						depths[w] = 1
					}
				}
				return depths, nil
			}
		}
		return nil, fmt.Errorf("no identifying edge for a depth-2 path")

	case 3:
		// The full depth-3 case analysis.
		rootOut := out[0]
		if len(rootOut) > 0 {
			// Edge A present: its target is depth 1.
			d1 := rootOut[0]
			// Family ⟨A,B⟩: depth 1 has an outgoing edge to depth 2,
			// which has an outgoing edge (D) to depth 3.
			if len(out[d1]) > 0 {
				d2 := out[d1][0]
				depths[d1], depths[d2] = 1, 2
				for _, v := range nonRoot {
					if v != d1 && v != d2 {
						depths[v] = 3
					}
				}
				return depths, nil
			}
			// Family ⟨A,B̄⟩: B absent forces E (3→1) present; the depth-2
			// group has no incoming arrow, and D points 2→3.
			for _, v := range nonRoot {
				if v == d1 {
					continue
				}
				if len(in[v]) == 0 {
					d2 := v
					depths[d1], depths[d2] = 1, 2
					for _, w := range nonRoot {
						if w != d1 && w != d2 {
							depths[w] = 3
						}
					}
					return depths, nil
				}
			}
			return nil, fmt.Errorf("family ⟨A,B̄⟩: no source group found for depth 2")
		}
		// Family ⟨Ā⟩: B and C present. C is the edge from depth 2 into
		// the root; B goes depth 1 → depth 2; D goes depth 2 → depth 3.
		for _, d2 := range nonRoot {
			if !has(d2, 0) {
				continue
			}
			// depth 1 is the group with an edge into d2; depth 3 is d2's
			// other outgoing target.
			var d1v, d3v = -1, -1
			for _, v := range nonRoot {
				if v == d2 {
					continue
				}
				switch {
				case has(v, d2):
					d1v = v
				case has(d2, v):
					d3v = v
				}
			}
			if d1v == -1 || d3v == -1 {
				continue
			}
			depths[d1v], depths[d2], depths[d3v] = 1, 2, 3
			return depths, nil
		}
		return nil, fmt.Errorf("family ⟨Ā⟩: could not identify the depth-2 group")
	}
	return nil, fmt.Errorf("unreachable")
}

// RecoverPath recovers the full logic tree of a path diagram via the
// Appendix B.1 depth rules, then materializes it with the shared
// predicate-placement logic.
func RecoverPath(d *core.Diagram) (*logictree.LT, error) {
	depths, err := RecoverPathDepths(d)
	if err != nil {
		return nil, err
	}
	g, err := buildGraph(d)
	if err != nil {
		return nil, err
	}
	// Parent of the group at depth k is the group at depth k-1.
	byDepth := map[int]int{}
	for gi, dep := range depths {
		if _, dup := byDepth[dep]; dup {
			return nil, fmt.Errorf("two groups at depth %d: not a path", dep)
		}
		byDepth[dep] = gi
	}
	parent := make([]int, len(g.groups))
	parent[0] = -1
	for dep := 1; dep < len(g.groups); dep++ {
		gi, ok := byDepth[dep]
		if !ok {
			return nil, fmt.Errorf("no group at depth %d", dep)
		}
		parent[gi] = byDepth[dep-1]
	}
	if !g.consistent(parent) {
		return nil, fmt.Errorf("recovered depths are inconsistent with the arrow rules")
	}
	lt := g.ltFromAssignment(parent)
	if err := lt.Validate(); err != nil {
		return nil, fmt.Errorf("recovered tree is degenerate: %w", err)
	}
	return lt, nil
}
