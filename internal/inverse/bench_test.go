package inverse

import (
	"context"
	"errors"
	"testing"
)

// BenchmarkRecoverBudgetPath measures the budget-bounded search on a
// diagram whose space exceeds the budget — the worst case the serving
// path pays before degrading. The cost is the budget itself (here 10k
// nodes), not the full 7^7 enumeration.
func BenchmarkRecoverBudgetPath(b *testing.B) {
	d, _ := wideDiagram(b, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := RecoverContext(context.Background(), d, 10_000)
		var be *BudgetError
		if !errors.As(err, &be) {
			b.Fatalf("err = %v, want *BudgetError", err)
		}
	}
}

// BenchmarkRecoverWithinBudget measures a complete budgeted recovery on a
// paper-sized diagram — the cost Verify mode adds to every healthy
// request.
func BenchmarkRecoverWithinBudget(b *testing.B) {
	d, _ := wideDiagram(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RecoverContext(context.Background(), d, 0); err != nil {
			b.Fatal(err)
		}
	}
}
