package inverse

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/logictree"
	"repro/internal/schema"
	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// wideQuery builds a query with `boxes` sibling NOT EXISTS blocks, each
// linked to the root. Every block is one table group, so the recovery
// search enumerates (boxes)^(boxes) parent assignments — the knob the
// budget tests turn.
func wideQuery(boxes int) string {
	var b strings.Builder
	b.WriteString("SELECT L0.drinker FROM Likes L0 WHERE ")
	for i := 1; i <= boxes; i++ {
		if i > 1 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b,
			"NOT EXISTS (SELECT * FROM Likes L%d WHERE L%d.drinker = L0.drinker AND L%d.beer = 'b%d')",
			i, i, i, i)
	}
	return b.String()
}

func wideDiagram(t testing.TB, boxes int) (*core.Diagram, *logictree.LT) {
	t.Helper()
	s := schema.Beers()
	q, err := sqlparse.Parse(wideQuery(boxes))
	if err != nil {
		t.Fatal(err)
	}
	r, err := sqlparse.Resolve(q, s)
	if err != nil {
		t.Fatal(err)
	}
	e, err := trc.Convert(q, r)
	if err != nil {
		t.Fatal(err)
	}
	lt := logictree.FromTRC(e).Flatten()
	d, err := core.Build(lt)
	if err != nil {
		t.Fatal(err)
	}
	return d, lt
}

// TestRecoverContextBudgetExhaustion: a wide diagram whose search space
// exceeds a small budget must stop with a *BudgetError naming the budget,
// not run the enumeration hot.
func TestRecoverContextBudgetExhaustion(t *testing.T) {
	d, _ := wideDiagram(t, 7) // 8 groups -> 7^7 ≈ 824k assignments
	_, err := RecoverContext(context.Background(), d, 10_000)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Budget != 10_000 || be.Nodes <= be.Budget {
		t.Fatalf("BudgetError = %+v, want Nodes > Budget = 10000", be)
	}
}

// TestRecoverContextWithinBudget: the same diagram recovers to the right
// tree when the budget covers the search space, and with the default
// budget on a normal-width diagram.
func TestRecoverContextWithinBudget(t *testing.T) {
	d, lt := wideDiagram(t, 4)
	rec, err := RecoverContext(context.Background(), d, 0) // default budget
	if err != nil {
		t.Fatalf("RecoverContext: %v", err)
	}
	if rec.Canonical() != lt.Canonical() {
		t.Fatalf("recovered tree differs:\n%s\n%s", rec.Canonical(), lt.Canonical())
	}
}

// TestRecoverContextUnboundedMatchesRecover: budget < 0 disables the
// bound; the result must equal the legacy exhaustive Recover.
func TestRecoverContextUnboundedMatchesRecover(t *testing.T) {
	d, _ := wideDiagram(t, 5)
	a, errA := Recover(d)
	b, errB := RecoverContext(context.Background(), d, -1)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("errors differ: %v vs %v", errA, errB)
	}
	if errA == nil && a.Canonical() != b.Canonical() {
		t.Fatal("unbounded RecoverContext disagrees with Recover")
	}
}

// TestRecoverContextCancellation: a canceled context stops the search
// with the context's error.
func TestRecoverContextCancellation(t *testing.T) {
	d, _ := wideDiagram(t, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RecoverContext(ctx, d, -1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSolutionsContextBudget: the Solutions entry point honors the same
// budget plumbing.
func TestSolutionsContextBudget(t *testing.T) {
	d, _ := wideDiagram(t, 7)
	_, err := SolutionsContext(context.Background(), d, 1)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if _, err := SolutionsContext(context.Background(), d, -1); err != nil {
		t.Fatalf("unbounded SolutionsContext: %v", err)
	}
}
