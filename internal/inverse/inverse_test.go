package inverse

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/logictree"
	"repro/internal/schema"
	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// ltFor builds a flattened, unsimplified logic tree for a query.
func ltFor(t *testing.T, src string, s *schema.Schema) *logictree.LT {
	t.Helper()
	q, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := sqlparse.Resolve(q, s)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	e, err := trc.Convert(q, r)
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	return logictree.FromTRC(e).Flatten()
}

const uniqueSetSQL = `
SELECT L1.drinker
FROM Likes L1
WHERE NOT EXISTS(
  SELECT * FROM Likes L2
  WHERE L1.drinker <> L2.drinker
  AND NOT EXISTS(
    SELECT * FROM Likes L3
    WHERE L3.drinker = L2.drinker
    AND NOT EXISTS(
      SELECT * FROM Likes L4
      WHERE L4.drinker = L1.drinker AND L4.beer = L3.beer))
  AND NOT EXISTS(
    SELECT * FROM Likes L5
    WHERE L5.drinker = L1.drinker
    AND NOT EXISTS(
      SELECT * FROM Likes L6
      WHERE L6.drinker = L2.drinker AND L6.beer = L5.beer)))`

func roundTrip(t *testing.T, lt *logictree.LT, label string) {
	t.Helper()
	if err := lt.Validate(); err != nil {
		t.Fatalf("%s: input LT invalid: %v", label, err)
	}
	d, err := core.Build(lt)
	if err != nil {
		t.Fatalf("%s: build: %v", label, err)
	}
	got, err := Recover(d)
	if err != nil {
		t.Fatalf("%s: recover: %v\ndiagram:\n%s", label, err, d)
	}
	if !logictree.Equal(lt, got) {
		t.Errorf("%s: recovered LT differs:\n  want %s\n  got  %s",
			label, lt.Canonical(), got.Canonical())
	}
}

func TestPathPatternCount(t *testing.T) {
	// Appendix B.1: exactly 16 of the 64 edge subsets are valid, split
	// 8 / 4 / 4 across the three families.
	valid := ValidPathPatterns()
	if len(valid) != 16 {
		t.Fatalf("got %d valid path patterns, want 16", len(valid))
	}
	families := map[string]int{}
	for _, p := range valid {
		families[p.Family()]++
	}
	if families["⟨A,B⟩"] != 8 || families["⟨A,B̄⟩"] != 4 || families["⟨Ā⟩"] != 4 {
		t.Errorf("family sizes = %v, want ⟨A,B⟩:8 ⟨A,B̄⟩:4 ⟨Ā⟩:4", families)
	}
	// Edge D (2→3) is present in every valid pattern (Property 5.2).
	for _, p := range valid {
		if !p.Has("D") {
			t.Errorf("pattern %v lacks edge D, contradicting Property 5.2", p.Edges)
		}
	}
}

func TestPathPatternsRecoverUniquely(t *testing.T) {
	// Proposition 5.1, exhaustively for path LTs of depth 3: each valid
	// pattern's diagram maps back to exactly the original tree.
	for _, p := range ValidPathPatterns() {
		lt := BuildPathLT(p)
		d := core.MustBuild(lt)
		sols, err := Solutions(d)
		if err != nil {
			t.Fatalf("pattern %v: %v", p.Edges, err)
		}
		if len(sols) != 1 {
			t.Errorf("pattern %v: %d solutions, want exactly 1", p.Edges, len(sols))
			continue
		}
		if !logictree.Equal(lt, sols[0]) {
			t.Errorf("pattern %v: recovered tree differs", p.Edges)
		}
	}
}

func TestInvalidPathPatternsRejected(t *testing.T) {
	valid := map[string]bool{}
	for _, p := range ValidPathPatterns() {
		valid[patternKey(p)] = true
	}
	n := 0
	for _, p := range AllPathPatterns() {
		if valid[patternKey(p)] {
			continue
		}
		n++
		if BuildPathLT(p).Validate() == nil {
			t.Errorf("pattern %v should be invalid", p.Edges)
		}
	}
	if n != 48 {
		t.Errorf("got %d invalid patterns, want 48", n)
	}
}

func TestRecoverUniqueSet(t *testing.T) {
	roundTrip(t, ltFor(t, uniqueSetSQL, schema.Beers()), "unique-set")
}

func TestRecoverCorpusQueries(t *testing.T) {
	cases := []struct {
		name, src string
		sch       *schema.Schema
	}{
		{"qonly", `
			SELECT F.person FROM Frequents F
			WHERE not exists (SELECT * FROM Serves S WHERE S.bar = F.bar
			  AND not exists (SELECT L.drink FROM Likes L
			    WHERE L.person = F.person AND S.drink = L.drink))`,
			schema.Beers()},
		{"sailors-only", `
			SELECT S.sname FROM Sailor S
			WHERE NOT EXISTS(SELECT * FROM Reserves R WHERE R.sid = S.sid
			  AND NOT EXISTS(SELECT * FROM Boat B
			    WHERE B.color = 'red' AND R.bid = B.bid))`,
			schema.Sailors()},
		{"branching-root", `
			SELECT A.ArtistId, A.Name
			FROM Artist A, Album AL1, Album AL2
			WHERE A.ArtistId = AL1.ArtistId AND A.ArtistId = AL2.ArtistId
			AND AL1.AlbumId <> AL2.AlbumId
			AND NOT EXISTS (SELECT * FROM Track T1, Genre G1
			  WHERE AL1.AlbumId = T1.AlbumId AND T1.GenreId = G1.GenreId
			  AND G1.Name = 'Rock')
			AND NOT EXISTS (SELECT * FROM Track T2
			  WHERE AL2.AlbumId = T2.AlbumId AND T2.Milliseconds < 270000)`,
			schema.Chinook()},
		{"nested-q12", `
			SELECT A.ArtistId, A.Name
			FROM Artist A, Album AL
			WHERE A.ArtistId = AL.ArtistId
			AND NOT EXISTS (SELECT * FROM Track T, Genre G
			  WHERE AL.AlbumId = T.AlbumId AND T.GenreId = G.GenreId
			  AND G.Name = 'Jazz'
			  AND NOT EXISTS (SELECT * FROM Playlist P, PlaylistTrack PT
			    WHERE P.PlaylistId = PT.PlaylistId AND PT.TrackId = T.TrackId))`,
			schema.Chinook()},
	}
	for _, c := range cases {
		roundTrip(t, ltFor(t, c.src, c.sch), c.name)
	}
}

func TestRecoverRandomBranchingTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(20200614))
	trees := 0
	for i := 0; i < 200; i++ {
		lt := logictree.RandomValid(rng, 3)
		if lt.Validate() != nil {
			t.Fatalf("RandomValid produced an invalid tree at i=%d", i)
		}
		trees++
		roundTrip(t, lt, "random")
	}
	if trees == 0 {
		t.Fatal("no random trees generated")
	}
}

func TestRecoverRejectsForAllForm(t *testing.T) {
	lt := ltFor(t, uniqueSetSQL, schema.Beers()).Simplify()
	d := core.MustBuild(lt)
	_, err := Recover(d)
	if err == nil || !strings.Contains(err.Error(), "∀") {
		t.Fatalf("expected ∀-form rejection, got %v", err)
	}
	// The documented route: de-simplify, rebuild, recover.
	d2 := core.MustBuild(lt.Unsimplify())
	rec, err := Recover(d2)
	if err != nil {
		t.Fatalf("recover after Unsimplify: %v", err)
	}
	want := ltFor(t, uniqueSetSQL, schema.Beers())
	if !logictree.Equal(want, rec) {
		t.Error("de-simplified recovery does not match the original tree")
	}
}

func TestUnsimplifyInvertsSimplify(t *testing.T) {
	orig := ltFor(t, uniqueSetSQL, schema.Beers())
	again := orig.Clone().Simplify().Unsimplify()
	if !logictree.Equal(orig, again) {
		t.Error("Unsimplify(Simplify(lt)) != lt")
	}
}

func TestDegenerateDiagramHasNoSolution(t *testing.T) {
	// A disconnected subquery (Property 5.2 violation) builds a diagram,
	// but no valid tree matches it.
	lt := ltFor(t, `
		SELECT F.person FROM Frequents F
		WHERE NOT EXISTS (SELECT * FROM Serves S WHERE S.bar = 'Owl')`,
		schema.Beers())
	d := core.MustBuild(lt)
	_, err := Recover(d)
	var amb *AmbiguityError
	if !errors.As(err, &amb) || amb.Solutions != 0 {
		t.Fatalf("expected 0-solution AmbiguityError, got %v", err)
	}
	if !strings.Contains(err.Error(), "no consistent") {
		t.Errorf("error text = %q", err)
	}
}

func TestRelaxedRecoveryShowsAmbiguity(t *testing.T) {
	// Section 5: without the non-degeneracy properties, structurally
	// different logic trees can map to the same diagram. A path diagram
	// whose only edge is D (between depths 2 and 3) leaves blocks 1 and 2
	// free to reattach, so the relaxed search finds several trees while
	// the validated search finds none.
	p := PathPattern{Edges: []string{"D"}}
	lt := BuildPathLT(p)
	if lt.Validate() == nil {
		t.Fatal("pattern {D} should be degenerate")
	}
	d := core.MustBuild(lt)
	relaxed, err := SolutionsRelaxed(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(relaxed) <= 1 {
		t.Errorf("relaxed solutions = %d, want ambiguity (> 1)", len(relaxed))
	}
	strict, err := Solutions(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) != 0 {
		t.Errorf("validated solutions = %d, want 0 for a degenerate diagram", len(strict))
	}
	// And for valid diagrams the relaxed search can also be ambiguous —
	// validation is what pins the unique tree — or coincide; either way
	// the validated solution must be among the relaxed ones.
	vp := ValidPathPatterns()[0]
	vlt := BuildPathLT(vp)
	vd := core.MustBuild(vlt)
	relaxed, err = SolutionsRelaxed(vd)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range relaxed {
		if logictree.Equal(r, vlt) {
			found = true
		}
	}
	if !found {
		t.Error("the true tree must be among the relaxed solutions")
	}
}

func TestDecomposeAtRoot(t *testing.T) {
	// Two independent subqueries at the root decompose into two
	// components (Appendix B.2.1, Fig. 14), each including the root.
	lt := ltFor(t, `
		SELECT S.sname FROM Sailor S
		WHERE NOT EXISTS (SELECT * FROM Reserves R1 WHERE R1.sid = S.sid AND R1.day = 'Mon')
		AND NOT EXISTS (SELECT * FROM Reserves R2 WHERE R2.sid = S.sid AND R2.day = 'Tue')`,
		schema.Sailors())
	d := core.MustBuild(lt)
	comps, err := DecomposeAtRoot(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2", len(comps))
	}
	rootID := -1
	for _, tn := range d.Tables[1:] {
		if tn.Var == "S" {
			rootID = tn.ID
		}
	}
	for i, c := range comps {
		found := false
		for _, id := range c {
			if id == rootID {
				found = true
			}
		}
		if !found {
			t.Errorf("component %d does not include the root table", i)
		}
		if len(c) != 2 {
			t.Errorf("component %d has %d tables, want 2 (root + one subquery)", i, len(c))
		}
	}

	// The unique-set diagram is connected below the root: one component.
	us := core.MustBuild(ltFor(t, uniqueSetSQL, schema.Beers()))
	comps, err = DecomposeAtRoot(us)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 {
		t.Errorf("unique-set decomposition: %d components, want 1", len(comps))
	}
}

func TestRecoverPreservesSelectGroupByAndSelections(t *testing.T) {
	lt := ltFor(t, `
		SELECT T.AlbumId, MAX(T.Milliseconds)
		FROM Track T, Genre G
		WHERE T.GenreId = G.GenreId AND G.Name = 'Classical'
		AND T.Bytes > 100
		GROUP BY T.AlbumId`,
		schema.Chinook())
	roundTrip(t, lt, "group-by")
	d := core.MustBuild(lt)
	rec, err := Recover(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.GroupBy) != 1 || rec.GroupBy[0].Column != "AlbumId" {
		t.Errorf("recovered GroupBy = %v", rec.GroupBy)
	}
	if len(rec.Select) != 2 || rec.Select[1].Agg != sqlparse.AggMax {
		t.Errorf("recovered Select = %v", rec.Select)
	}
	nPreds := 0
	rec.Walk(func(n *logictree.Node, _ int) { nPreds += len(n.Preds) })
	if nPreds != 3 {
		t.Errorf("recovered %d predicates, want 3", nPreds)
	}
}

func TestParseConst(t *testing.T) {
	cases := []struct {
		in      string
		wantStr string
		isStr   bool
		num     float64
	}{
		{"'red'", "red", true, 0},
		{"'it''s'", "it's", true, 0},
		{"42", "", false, 42},
		{"2.5", "", false, 2.5},
	}
	for _, c := range cases {
		got := parseConst(c.in)
		if got.IsString != c.isStr {
			t.Errorf("parseConst(%q).IsString = %v", c.in, got.IsString)
			continue
		}
		if c.isStr && got.Str != c.wantStr {
			t.Errorf("parseConst(%q) = %q, want %q", c.in, got.Str, c.wantStr)
		}
		if !c.isStr && got.Num != c.num {
			t.Errorf("parseConst(%q) = %v, want %v", c.in, got.Num, c.num)
		}
	}
}

func TestRecoverPreservesArithmeticOffsets(t *testing.T) {
	lt := ltFor(t, `
		SELECT S.sname FROM Sailor S
		WHERE S.age - 1 > 20
		AND NOT EXISTS (
		  SELECT * FROM Reserves R WHERE R.sid = S.sid AND R.bid > S.rating + 3)`,
		schema.Sailors())
	roundTrip(t, lt, "arithmetic")
}
