package inverse

import (
	"sort"

	"repro/internal/logictree"
	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// PathEdges names the six possible edge types of a depth-3 path logic
// tree, following Fig. 13a. Each entry connects two nesting depths; the
// letter is the paper's label.
var PathEdges = []struct {
	Name   string
	Lo, Hi int // the two depths the edge connects (Lo < Hi)
}{
	{"A", 0, 1},
	{"B", 1, 2},
	{"C", 0, 2},
	{"D", 2, 3},
	{"E", 1, 3},
	{"F", 0, 3},
}

// PathPattern is one subset of the six edges, by name.
type PathPattern struct {
	Edges []string
}

// Has reports whether the pattern contains the named edge.
func (p PathPattern) Has(name string) bool {
	for _, e := range p.Edges {
		if e == name {
			return true
		}
	}
	return false
}

// Family classifies the pattern into the three families of Appendix B.1:
// "⟨A,B⟩" (A and B present), "⟨A,B̄⟩" (A present, B absent), or "⟨Ā⟩"
// (A absent).
func (p PathPattern) Family() string {
	switch {
	case p.Has("A") && p.Has("B"):
		return "⟨A,B⟩"
	case p.Has("A"):
		return "⟨A,B̄⟩"
	default:
		return "⟨Ā⟩"
	}
}

// BuildPathLT materializes the depth-3 path logic tree for an edge
// subset: four single-table ∄-chained blocks T0→T1→T2→T3 over a synthetic
// relation R(a,b,c,d,e,f), with one equijoin predicate per chosen edge on
// that edge's own attribute. The predicate is owned by the deeper block.
func BuildPathLT(p PathPattern) *logictree.LT {
	cols := map[string]string{"A": "a", "B": "b", "C": "c", "D": "d", "E": "e", "F": "f"}
	nodes := make([]*logictree.Node, 4)
	vars := []string{"T0", "T1", "T2", "T3"}
	for i := range nodes {
		q := trc.NotExists
		if i == 0 {
			q = trc.Exists
		}
		nodes[i] = &logictree.Node{
			Quant:  q,
			Tables: []logictree.Table{{Var: vars[i], Relation: "R"}},
		}
	}
	for i := 0; i < 3; i++ {
		nodes[i].Children = []*logictree.Node{nodes[i+1]}
	}
	for _, e := range PathEdges {
		if !p.Has(e.Name) {
			continue
		}
		col := cols[e.Name]
		l := trc.Attr{Var: vars[e.Hi], Column: col}
		r := trc.Attr{Var: vars[e.Lo], Column: col}
		nodes[e.Hi].Preds = append(nodes[e.Hi].Preds, trc.Pred{
			Left: trc.Term{Attr: &l}, Op: sqlparse.OpEq, Right: trc.Term{Attr: &r},
		})
	}
	return &logictree.LT{
		Root: nodes[0],
		Select: []trc.SelectItem{{
			Attr: trc.Attr{Var: "T0", Column: "a"},
		}},
	}
}

// AllPathPatterns enumerates all 2^6 = 64 edge subsets.
func AllPathPatterns() []PathPattern {
	var out []PathPattern
	for mask := 0; mask < 64; mask++ {
		var p PathPattern
		for i, e := range PathEdges {
			if mask&(1<<i) != 0 {
				p.Edges = append(p.Edges, e.Name)
			}
		}
		out = append(out, p)
	}
	return out
}

// ValidPathPatterns returns the edge subsets whose path logic tree is a
// valid non-degenerate query. Appendix B.1 derives there are exactly 16:
// 8 in family ⟨A,B⟩, 4 in ⟨A,B̄⟩, and 4 in ⟨Ā⟩.
func ValidPathPatterns() []PathPattern {
	var out []PathPattern
	for _, p := range AllPathPatterns() {
		if BuildPathLT(p).Validate() == nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return patternKey(out[i]) < patternKey(out[j])
	})
	return out
}

func patternKey(p PathPattern) string {
	s := ""
	for _, e := range PathEdges {
		if p.Has(e.Name) {
			s += e.Name
		}
	}
	return s
}
