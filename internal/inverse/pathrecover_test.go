package inverse

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/logictree"
	"repro/internal/schema"
)

func TestRecoverPathAgreesWithSearchOnAllPatterns(t *testing.T) {
	// The literal Appendix B.1 case analysis and the search-based
	// recovery must agree on every valid depth-3 path pattern.
	for _, p := range ValidPathPatterns() {
		lt := BuildPathLT(p)
		d := core.MustBuild(lt)
		direct, err := RecoverPath(d)
		if err != nil {
			t.Fatalf("pattern %v: %v", p.Edges, err)
		}
		searched, err := Recover(d)
		if err != nil {
			t.Fatalf("pattern %v (search): %v", p.Edges, err)
		}
		if !logictree.Equal(direct, searched) {
			t.Errorf("pattern %v: direct and search recovery disagree", p.Edges)
		}
		if !logictree.Equal(direct, lt) {
			t.Errorf("pattern %v: direct recovery differs from the original", p.Edges)
		}
	}
}

func TestRecoverPathDepthsFamilies(t *testing.T) {
	// Spot-check one pattern per family. Group indices follow box order
	// (depth 1, 2, 3 in construction order).
	check := func(edges []string) {
		t.Helper()
		lt := BuildPathLT(PathPattern{Edges: edges})
		d := core.MustBuild(lt)
		depths, err := RecoverPathDepths(d)
		if err != nil {
			t.Fatalf("%v: %v", edges, err)
		}
		// Compare against the diagram's hidden ground truth: each group's
		// depth equals its tables' true depth.
		g, err := buildGraph(d)
		if err != nil {
			t.Fatal(err)
		}
		for gi, ids := range g.groups {
			want := d.TrueDepth(ids[0])
			if depths[gi] != want {
				t.Errorf("%v: group %d depth = %d, want %d", edges, gi, depths[gi], want)
			}
		}
	}
	check([]string{"A", "B", "D"})                // ⟨A,B⟩ minimal
	check([]string{"A", "B", "C", "D", "E", "F"}) // ⟨A,B⟩ maximal
	check([]string{"A", "D", "E"})                // ⟨A,B̄⟩ minimal
	check([]string{"A", "C", "D", "E", "F"})      // ⟨A,B̄⟩ maximal
	check([]string{"B", "C", "D"})                // ⟨Ā⟩ minimal
	check([]string{"B", "C", "D", "E", "F"})      // ⟨Ā⟩ maximal
}

func TestRecoverPathShallowerDiagrams(t *testing.T) {
	// Depth-1 and depth-2 paths are sub-cases of the analysis.
	lt1 := ltFor(t, `
		SELECT S.sname FROM Sailor S
		WHERE NOT EXISTS (SELECT * FROM Reserves R WHERE R.sid = S.sid)`,
		schema.Sailors())
	got, err := RecoverPath(core.MustBuild(lt1))
	if err != nil {
		t.Fatal(err)
	}
	if !logictree.Equal(lt1, got) {
		t.Error("depth-1 path recovery failed")
	}

	lt2 := ltFor(t, `
		SELECT S.sname FROM Sailor S
		WHERE NOT EXISTS (SELECT * FROM Reserves R WHERE R.sid = S.sid
		  AND NOT EXISTS (SELECT * FROM Boat B WHERE B.bid = R.bid AND B.color = 'red'))`,
		schema.Sailors())
	got, err = RecoverPath(core.MustBuild(lt2))
	if err != nil {
		t.Fatal(err)
	}
	if !logictree.Equal(lt2, got) {
		t.Error("depth-2 path recovery failed")
	}

	// Conjunctive query: a single group, depth 0 only.
	lt0 := ltFor(t, `SELECT S.sname FROM Sailor S WHERE S.rating > 7`, schema.Sailors())
	got, err = RecoverPath(core.MustBuild(lt0))
	if err != nil {
		t.Fatal(err)
	}
	if !logictree.Equal(lt0, got) {
		t.Error("depth-0 recovery failed")
	}
}

func TestRecoverPathRejectsBranching(t *testing.T) {
	lt := ltFor(t, uniqueSetSQL, schema.Beers()) // branches at depth 1
	_, err := RecoverPath(core.MustBuild(lt))
	if err == nil {
		t.Fatal("branching diagram should be rejected by the path recovery")
	}
	// 6 groups exceed the 4-group path bound.
	if !strings.Contains(err.Error(), "up to depth 3") {
		t.Errorf("error = %v", err)
	}
	// Two-sibling branching with 4 groups is also rejected.
	lt2 := ltFor(t, `
		SELECT S.sname FROM Sailor S
		WHERE NOT EXISTS (SELECT * FROM Reserves R1 WHERE R1.sid = S.sid AND R1.day = 'Mon')
		AND NOT EXISTS (SELECT * FROM Reserves R2 WHERE R2.sid = S.sid AND R2.day = 'Tue')
		AND NOT EXISTS (SELECT * FROM Reserves R3 WHERE R3.sid = S.sid AND R3.day = 'Wed')`,
		schema.Sailors())
	_, err = RecoverPath(core.MustBuild(lt2))
	if err == nil {
		t.Fatal("sibling branching should fail path recovery")
	}
}
