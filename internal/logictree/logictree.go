// Package logictree implements the Logic Tree (LT) of Section 4.7: a rooted
// tree equivalent to the query's TRC representation in which each node is
// one query block holding its tables (T), conjunction of predicates (P),
// and quantifier (Q). The root additionally carries the select list (and
// the GROUP BY extension used in the study).
//
// The package also implements the paper's logic simplification: a node ∄ψ
// whose only child is ∄ψ′ is rewritten to ∀ψ with child ∃ψ′ by De Morgan's
// law (equations 1-3 in Section 4.7), which is how Fig. 10a becomes
// Fig. 10b.
package logictree

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// ctxStepper amortizes cancellation checks over tree traversals: one
// ctx.Err() call every few hundred visited nodes. A nil ctx disables
// checking entirely, so the non-context entry points pay only an
// increment per node.
type ctxStepper struct {
	ctx context.Context
	n   uint
}

func (s *ctxStepper) step() error {
	if s.ctx == nil {
		return nil
	}
	if s.n++; s.n&255 != 0 {
		return nil
	}
	return s.ctx.Err()
}

// Table is one table instance in a node: a tuple-variable name bound to a
// relation, e.g. {Var: "L2", Relation: "Likes"}.
type Table struct {
	Var      string
	Relation string
}

// String renders "Relation Var".
func (t Table) String() string { return t.Relation + " " + t.Var }

// Node is one LT node: a query block.
type Node struct {
	Quant    trc.Quant
	Tables   []Table
	Preds    []trc.Pred
	Children []*Node
}

// LT is a complete logic tree. Root always has the ∃ quantifier.
type LT struct {
	Root    *Node
	Select  []trc.SelectItem
	GroupBy []trc.Attr
}

// FromTRC builds a logic tree from a TRC expression. The structures are
// isomorphic (Fig. 8: "TRC = LT"); this is a deep structural copy so that
// later transformations never alias the TRC expression. A nil expression
// or missing root yields an empty tree (which Validate rejects) rather
// than a nil-dereference panic.
func FromTRC(e *trc.Expr) *LT {
	lt, err := FromTRCContext(context.Background(), e)
	if err != nil {
		return &LT{Root: &Node{}}
	}
	return lt
}

// FromTRCContext is FromTRC with cooperative cancellation and an error
// for structurally unusable input (nil expression or root).
func FromTRCContext(ctx context.Context, e *trc.Expr) (*LT, error) {
	if e == nil || e.Root == nil {
		return nil, fmt.Errorf("logictree: TRC expression has no root block")
	}
	st := &ctxStepper{ctx: ctx}
	lt := &LT{
		Select:  append([]trc.SelectItem(nil), e.Select...),
		GroupBy: append([]trc.Attr(nil), e.GroupBy...),
	}
	var conv func(b *trc.Block) (*Node, error)
	conv = func(b *trc.Block) (*Node, error) {
		if err := st.step(); err != nil {
			return nil, err
		}
		n := &Node{Quant: b.Quant}
		for _, v := range b.Vars {
			n.Tables = append(n.Tables, Table{Var: v.Name, Relation: v.Relation})
		}
		n.Preds = append(n.Preds, b.Preds...)
		for _, s := range b.Subs {
			c, err := conv(s)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
		}
		return n, nil
	}
	root, err := conv(e.Root)
	if err != nil {
		return nil, err
	}
	lt.Root = root
	return lt, nil
}

// ToTRC converts the logic tree back to a TRC expression (used to render
// simplified TRC as in Fig. 9b).
func (lt *LT) ToTRC() *trc.Expr {
	e, _ := lt.toTRC(nil) // nil stepper ctx: cannot fail
	return e
}

func (lt *LT) toTRC(ctx context.Context) (*trc.Expr, error) {
	if lt.Root == nil {
		return &trc.Expr{
			Select:  append([]trc.SelectItem(nil), lt.Select...),
			GroupBy: append([]trc.Attr(nil), lt.GroupBy...),
			Root:    &trc.Block{},
		}, nil
	}
	st := &ctxStepper{ctx: ctx}
	var conv func(n *Node) (*trc.Block, error)
	conv = func(n *Node) (*trc.Block, error) {
		if err := st.step(); err != nil {
			return nil, err
		}
		b := &trc.Block{Quant: n.Quant}
		for _, t := range n.Tables {
			b.Vars = append(b.Vars, trc.Var{Name: t.Var, Relation: t.Relation})
		}
		b.Preds = append(b.Preds, n.Preds...)
		for _, c := range n.Children {
			s, err := conv(c)
			if err != nil {
				return nil, err
			}
			b.Subs = append(b.Subs, s)
		}
		return b, nil
	}
	root, err := conv(lt.Root)
	if err != nil {
		return nil, err
	}
	return &trc.Expr{
		Select:  append([]trc.SelectItem(nil), lt.Select...),
		GroupBy: append([]trc.Attr(nil), lt.GroupBy...),
		Root:    root,
	}, nil
}

// Clone returns a deep copy of the tree.
func (lt *LT) Clone() *LT { return FromTRC(lt.ToTRC()) }

// CloneContext is Clone with cooperative cancellation.
func (lt *LT) CloneContext(ctx context.Context) (*LT, error) {
	e, err := lt.toTRC(ctx)
	if err != nil {
		return nil, err
	}
	return FromTRCContext(ctx, e)
}

// Walk visits every node in depth-first pre-order.
func (lt *LT) Walk(fn func(n *Node, depth int)) {
	var rec func(n *Node, d int)
	rec = func(n *Node, d int) {
		fn(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	rec(lt.Root, 0)
}

// MaxDepth returns the maximum node depth (root = 0).
func (lt *LT) MaxDepth() int {
	max := 0
	lt.Walk(func(_ *Node, d int) {
		if d > max {
			max = d
		}
	})
	return max
}

// NodeCount returns the number of nodes in the tree.
func (lt *LT) NodeCount() int {
	n := 0
	lt.Walk(func(*Node, int) { n++ })
	return n
}

// TableCount returns the number of table instances across all nodes.
func (lt *LT) TableCount() int {
	n := 0
	lt.Walk(func(nd *Node, _ int) { n += len(nd.Tables) })
	return n
}

// NodeOf returns the node defining the given tuple variable, or nil.
func (lt *LT) NodeOf(varName string) *Node {
	var found *Node
	lt.Walk(func(n *Node, _ int) {
		for _, t := range n.Tables {
			if t.Var == varName {
				found = n
			}
		}
	})
	return found
}

// DepthOf returns the depth of the node defining varName, or -1.
func (lt *LT) DepthOf(varName string) int {
	depth := -1
	lt.Walk(func(n *Node, d int) {
		for _, t := range n.Tables {
			if t.Var == varName {
				depth = d
			}
		}
	})
	return depth
}

// Simplify applies the ∄∄ → ∀∃ rewrite everywhere it is admissible and
// returns the receiver. A node qualifies when its quantifier is ∄ and it
// has exactly one child, whose quantifier is also ∄ (Section 4.7). The
// rewrite is applied top-down so that, e.g., the unique-set query's L3/L4
// and L5/L6 pairs both transform while L2 (two children) is left as ∄,
// exactly as in Fig. 10b.
func (lt *LT) Simplify() *LT {
	lt2, _ := lt.SimplifyContext(nil) // nil ctx: cannot fail
	return lt2
}

// SimplifyContext is Simplify with cooperative cancellation.
func (lt *LT) SimplifyContext(ctx context.Context) (*LT, error) {
	if lt.Root == nil {
		return lt, nil
	}
	st := &ctxStepper{ctx: ctx}
	var rec func(n *Node) error
	rec = func(n *Node) error {
		if err := st.step(); err != nil {
			return err
		}
		if n.Quant == trc.NotExists && len(n.Children) == 1 &&
			n.Children[0].Quant == trc.NotExists {
			n.Quant = trc.ForAll
			n.Children[0].Quant = trc.Exists
		}
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, c := range lt.Root.Children {
		if err := rec(c); err != nil {
			return nil, err
		}
	}
	return lt, nil
}

// Simplified returns a simplified deep copy, leaving the receiver intact.
func (lt *LT) Simplified() *LT { return lt.Clone().Simplify() }

// SimplifiedContext is Simplified with cooperative cancellation.
func (lt *LT) SimplifiedContext(ctx context.Context) (*LT, error) {
	c, err := lt.CloneContext(ctx)
	if err != nil {
		return nil, err
	}
	return c.SimplifyContext(ctx)
}

// Flatten merges every ∃ block into its parent block and returns the
// receiver. An EXISTS subquery over a conjunction is logically identical
// to listing its tables in the enclosing FROM clause, and the diagram
// draws no box for ∃ (Section 4.6 treats same-block tables "as if T has
// the ∃ quantifier applied"); flattening makes that equivalence explicit
// so that diagram → LT recovery is exact. The single ∃ child of a ∀ block
// is the implication's consequent and is never merged.
func (lt *LT) Flatten() *LT {
	lt2, _ := lt.FlattenContext(nil) // nil ctx: cannot fail
	return lt2
}

// FlattenContext is Flatten with cooperative cancellation.
func (lt *LT) FlattenContext(ctx context.Context) (*LT, error) {
	if lt.Root == nil {
		return lt, nil
	}
	st := &ctxStepper{ctx: ctx}
	var rec func(n *Node) error
	rec = func(n *Node) error {
		for {
			if err := st.step(); err != nil {
				return err
			}
			merged := false
			var kept []*Node
			for _, c := range n.Children {
				if c.Quant == trc.Exists && n.Quant != trc.ForAll {
					n.Tables = append(n.Tables, c.Tables...)
					n.Preds = append(n.Preds, c.Preds...)
					kept = append(kept, c.Children...)
					merged = true
					continue
				}
				kept = append(kept, c)
			}
			n.Children = kept
			if !merged {
				break
			}
		}
		for _, c := range n.Children {
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(lt.Root); err != nil {
		return nil, err
	}
	return lt, nil
}

// Flattened returns a flattened deep copy, leaving the receiver intact.
func (lt *LT) Flattened() *LT { return lt.Clone().Flatten() }

// Unsimplify inverts Simplify, rewriting every ∀ block (with its single
// ∃ child) back into the ∄∄ double negation SQL requires, and returns the
// receiver. Simplify(Unsimplify(lt)) == lt for trees produced by Simplify.
func (lt *LT) Unsimplify() *LT {
	lt.Walk(func(n *Node, _ int) {
		if n.Quant == trc.ForAll && len(n.Children) == 1 &&
			n.Children[0].Quant == trc.Exists {
			n.Quant = trc.NotExists
			n.Children[0].Quant = trc.NotExists
		}
	})
	return lt
}

// String renders the tree in the paper's Fig. 5 style: one node per
// indented line with its T, P, and Q fields.
func (lt *LT) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Select: {%s}", joinSelect(lt.Select))
	if len(lt.GroupBy) > 0 {
		b.WriteString(" GroupBy: {")
		for i, g := range lt.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
		b.WriteString("}")
	}
	b.WriteString("\n")
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		pad := strings.Repeat("  ", depth)
		var tbls []string
		for _, t := range n.Tables {
			tbls = append(tbls, t.String())
		}
		var preds []string
		for _, p := range n.Preds {
			preds = append(preds, "("+p.String()+")")
		}
		q := ""
		if depth > 0 {
			q = "  Q: " + n.Quant.String()
		}
		fmt.Fprintf(&b, "%sT: {%s}  P: {%s}%s\n",
			pad, strings.Join(tbls, ", "), strings.Join(preds, ", "), q)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	// A rootless tree (the degenerate value the nil-TRC guards produce)
	// renders as just its header instead of dereferencing nil.
	if lt.Root != nil {
		rec(lt.Root, 0)
	}
	return strings.TrimRight(b.String(), "\n")
}

func joinSelect(items []trc.SelectItem) string {
	var out []string
	for _, s := range items {
		out = append(out, s.String())
	}
	return strings.Join(out, ", ")
}

// Canonical returns a canonical string for the tree: predicate operand
// order is normalized (flipping the operator as needed), predicates are
// sorted within each node, and sibling subtrees are sorted by their own
// canonical strings. Two trees with the same logical structure — e.g. the
// three Fig. 24 syntactic variants — have equal canonical strings.
func (lt *LT) Canonical() string {
	var b strings.Builder
	fmt.Fprintf(&b, "select{%s}", joinSelect(lt.Select))
	if len(lt.GroupBy) > 0 {
		var gs []string
		for _, g := range lt.GroupBy {
			gs = append(gs, g.String())
		}
		fmt.Fprintf(&b, "groupby{%s}", strings.Join(gs, ","))
	}
	b.WriteString(canonicalNode(lt.Root))
	return b.String()
}

func canonicalNode(n *Node) string {
	tbls := make([]string, 0, len(n.Tables))
	for _, t := range n.Tables {
		tbls = append(tbls, t.Relation+" "+t.Var)
	}
	sort.Strings(tbls)
	preds := make([]string, 0, len(n.Preds))
	for _, p := range n.Preds {
		preds = append(preds, CanonicalPred(p).String())
	}
	sort.Strings(preds)
	kids := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		kids = append(kids, canonicalNode(c))
	}
	sort.Strings(kids)
	return fmt.Sprintf("%s{T:%s P:%s C:%s}",
		n.Quant, strings.Join(tbls, ","), strings.Join(preds, ","),
		strings.Join(kids, ""))
}

// CanonicalPred orients a predicate deterministically: constants go
// right, and between two attributes the lexicographically smaller term
// goes left, flipping the operator as needed. When both sides are the
// same attribute (e.g. "L.x <= L.x") the orientation with the smaller
// operator value is chosen, so that a predicate and its flip always
// canonicalize identically.
func CanonicalPred(p trc.Pred) trc.Pred {
	flip := func() trc.Pred {
		return trc.Pred{Left: p.Right, Op: p.Op.Flip(), Right: p.Left}
	}
	if p.Left.IsConst() {
		return flip()
	}
	if p.Right.IsConst() {
		return p
	}
	switch l, r := p.Left.Attr.String(), p.Right.Attr.String(); {
	case l > r:
		return normalizeOffsets(flip())
	case l == r && p.Op.Flip() < p.Op:
		return normalizeOffsets(flip())
	}
	return normalizeOffsets(p)
}

// normalizeOffsets moves arithmetic offsets to a canonical position:
// between two attributes the net offset sits on the right term
// ("a op b + k"); against a numeric constant the offset is folded into
// the constant ("a + k op c" becomes "a op c-k"). The rewrites preserve
// semantics for every comparison operator, so predicates that differ only
// in where their arithmetic is written canonicalize identically.
func normalizeOffsets(p trc.Pred) trc.Pred {
	switch {
	case p.Left.Attr != nil && p.Right.Attr != nil:
		net := p.Right.Offset - p.Left.Offset
		p.Left.Offset = 0
		p.Right.Offset = net
	case p.Left.Attr != nil && p.Right.Const != nil &&
		!p.Right.Const.IsString && p.Left.Offset != 0:
		c := sqlparse.NumberConst(p.Right.Const.Num - p.Left.Offset)
		p.Left.Offset = 0
		p.Right.Const = &c
	}
	return p
}

// Equal reports whether two trees have the same canonical form.
func Equal(a, b *LT) bool { return a.Canonical() == b.Canonical() }
