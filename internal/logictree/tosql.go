package logictree

import (
	"fmt"
	"strings"

	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// ToSQL re-derives a SQL query from a logic tree, inverting the
// SQL → TRC → LT direction of the pipeline. Every ∄ block becomes a
// NOT EXISTS subquery and every ∃ block an EXISTS subquery; ∀ blocks are
// first rewritten back into the ∄∄ double negation via Unsimplify (SQL has
// no universal quantifier). The receiver is not modified.
//
// The emitted query uses each tuple variable as its table alias, so the
// tree must not contain two tables with the same variable name (trees
// produced by the pipeline satisfy this: trc.Convert renames shadowed
// aliases). Variable names containing '#' — trc.Convert's shadow-renaming
// marker, which the lexer cannot read back — are sanitized to '_'.
func (lt *LT) ToSQL() (*sqlparse.Query, error) {
	t := lt.Clone().Unsimplify()
	q, err := nodeToQuery(t.Root)
	if err != nil {
		return nil, err
	}
	if len(t.Select) == 0 {
		return nil, fmt.Errorf("logic tree has an empty select list")
	}
	q.Star = false
	for _, s := range t.Select {
		item := sqlparse.SelectItem{Agg: s.Agg, Star: s.Star}
		if !s.Star {
			item.Col = sqlparse.ColumnRef{Table: sqlVar(s.Attr.Var), Column: s.Attr.Column}
		}
		q.Select = append(q.Select, item)
	}
	for _, g := range t.GroupBy {
		q.GroupBy = append(q.GroupBy, sqlparse.ColumnRef{Table: sqlVar(g.Var), Column: g.Column})
	}
	return q, nil
}

func nodeToQuery(n *Node) (*sqlparse.Query, error) {
	if n.Quant == trc.ForAll {
		// Unsimplify rewrites every ∀-with-single-∃-child; anything left is
		// a shape SQL cannot express directly.
		return nil, fmt.Errorf("cannot translate a ∀ block with %d children to SQL", len(n.Children))
	}
	if len(n.Tables) == 0 {
		return nil, fmt.Errorf("block has no tables; SQL requires a non-empty FROM clause")
	}
	q := &sqlparse.Query{Star: true}
	for _, t := range n.Tables {
		q.From = append(q.From, sqlparse.TableRef{Table: t.Relation, Alias: sqlVar(t.Var)})
	}
	for _, p := range n.Preds {
		q.Where = append(q.Where, &sqlparse.Compare{
			Left:  termToOperand(p.Left),
			Op:    p.Op,
			Right: termToOperand(p.Right),
		})
	}
	for _, c := range n.Children {
		sub, err := nodeToQuery(c)
		if err != nil {
			return nil, err
		}
		q.Where = append(q.Where, &sqlparse.Exists{
			Negated: c.Quant == trc.NotExists,
			Sub:     sub,
		})
	}
	return q, nil
}

func termToOperand(t trc.Term) sqlparse.Operand {
	if t.Attr != nil {
		return sqlparse.Operand{
			Col:    &sqlparse.ColumnRef{Table: sqlVar(t.Attr.Var), Column: t.Attr.Column},
			Offset: t.Offset,
		}
	}
	c := *t.Const
	return sqlparse.Operand{Const: &c}
}

// sqlVar makes a tuple-variable name usable as a SQL alias.
func sqlVar(v string) string { return strings.ReplaceAll(v, "#", "_") }
