package logictree

import (
	"fmt"
	"strings"

	"repro/internal/trc"
)

// MaxSupportedDepth is the nesting bound for which the paper proves
// diagram unambiguity (Section 5.2): "the queries we observe in practice
// also do not have more than 3 levels of nesting".
const MaxSupportedDepth = 3

// ValidationError aggregates every violation found by Validate.
type ValidationError struct {
	Issues []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("logic tree is not a valid non-degenerate query: %s",
		strings.Join(e.Issues, "; "))
}

// refsVars returns the set of tuple variables a predicate mentions.
func refsVars(p trc.Pred) map[string]bool {
	out := map[string]bool{}
	if p.Left.Attr != nil {
		out[p.Left.Attr.Var] = true
	}
	if p.Right.Attr != nil {
		out[p.Right.Attr.Var] = true
	}
	return out
}

func varSet(n *Node) map[string]bool {
	out := map[string]bool{}
	for _, t := range n.Tables {
		out[t.Var] = true
	}
	return out
}

// Validate checks that the tree describes a non-degenerate query the
// diagrams are proven unambiguous for:
//
//   - structural sanity: root quantifier ∃; every node has at least one
//     table; predicates reference only variables in scope; at most one
//     constant per predicate; a ∀ node has exactly one child, which is ∃;
//   - nesting depth at most MaxSupportedDepth;
//   - Property 5.1 (local attributes): every predicate references at least
//     one attribute of a table from its own query block;
//   - Property 5.2 (connected subqueries): every nested block either has a
//     predicate referencing an attribute of its parent block, or each of
//     its directly nested blocks references both it and its parent.
func (lt *LT) Validate() error {
	var issues []string
	addf := func(format string, args ...any) {
		issues = append(issues, fmt.Sprintf(format, args...))
	}

	if lt.Root == nil {
		return &ValidationError{Issues: []string{"tree has no root"}}
	}
	if lt.Root.Quant != trc.Exists {
		addf("root quantifier is %s, want ∃", lt.Root.Quant)
	}
	if d := lt.MaxDepth(); d > MaxSupportedDepth {
		addf("nesting depth %d exceeds supported maximum %d", d, MaxSupportedDepth)
	}

	// Track which variables each node's scope can see.
	var check func(n *Node, parent *Node, scope map[string]bool)
	check = func(n *Node, parent *Node, scope map[string]bool) {
		if len(n.Tables) == 0 {
			addf("a query block defines no tables")
		}
		local := varSet(n)
		full := map[string]bool{}
		for v := range scope {
			full[v] = true
		}
		for v := range local {
			if full[v] {
				addf("variable %s shadows an enclosing definition", v)
			}
			full[v] = true
		}
		if n.Quant == trc.ForAll {
			if len(n.Children) != 1 {
				addf("∀ block must have exactly one child, has %d", len(n.Children))
			} else if n.Children[0].Quant != trc.Exists {
				addf("the child of a ∀ block must be ∃, is %s", n.Children[0].Quant)
			}
		}
		for _, p := range n.Preds {
			if p.Left.IsConst() && p.Right.IsConst() {
				addf("predicate %s compares two constants", p)
			}
			refs := refsVars(p)
			localRef := false
			for v := range refs {
				if !full[v] {
					addf("predicate %s references %s, which is not in scope", p, v)
				}
				if local[v] {
					localRef = true
				}
			}
			if !localRef {
				// Property 5.1.
				addf("predicate %s violates Property 5.1: it references no local attribute", p)
			}
		}
		// Property 5.2 for nested blocks.
		if parent != nil {
			parentVars := varSet(parent)
			if !referencesAny(n, parentVars) {
				ok := len(n.Children) > 0
				for _, c := range n.Children {
					if !blockReferences(c, local) || !blockReferences(c, parentVars) {
						ok = false
					}
				}
				if !ok {
					addf("block {%s} violates Property 5.2: no predicate links it to its parent, and not all children reference both it and its parent",
						tablesOf(n))
				}
			}
		}
		for _, c := range n.Children {
			check(c, n, full)
		}
	}
	check(lt.Root, nil, map[string]bool{})

	if len(issues) > 0 {
		return &ValidationError{Issues: issues}
	}
	return nil
}

// referencesAny reports whether any predicate of node n mentions a
// variable from the given set.
func referencesAny(n *Node, vars map[string]bool) bool {
	for _, p := range n.Preds {
		for v := range refsVars(p) {
			if vars[v] {
				return true
			}
		}
	}
	return false
}

// blockReferences reports whether node n's own predicates mention at least
// one variable from the given set.
func blockReferences(n *Node, vars map[string]bool) bool {
	return referencesAny(n, vars)
}

func tablesOf(n *Node) string {
	var out []string
	for _, t := range n.Tables {
		out = append(out, t.String())
	}
	return strings.Join(out, ", ")
}

// IsValid reports whether Validate returns nil.
func (lt *LT) IsValid() bool { return lt.Validate() == nil }
