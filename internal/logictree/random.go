package logictree

import (
	"fmt"
	"math/rand"

	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// RandomValid generates a random non-degenerate logic tree of nesting
// depth at most maxDepth (clamped to MaxSupportedDepth) over a synthetic
// schema of relations R0..R3 sharing columns k0..k5. The result always
// satisfies Validate: every predicate references a local attribute
// (Property 5.1) and every block is connected to its parent either
// directly or through all of its children (Property 5.2).
//
// The generator is used by property tests and benchmarks that exercise
// diagram construction and diagram → LT recovery on branching trees,
// which the Appendix B.1 path-pattern enumeration does not cover.
func RandomValid(rng *rand.Rand, maxDepth int) *LT {
	if maxDepth > MaxSupportedDepth {
		maxDepth = MaxSupportedDepth
	}
	if maxDepth < 0 {
		maxDepth = 0
	}
	g := &randGen{rng: rng, blocks: 6}
	root := g.node(trc.Exists, 0)
	lt := &LT{Root: root}

	// Grow children; each child links back to an ancestor directly.
	g.grow(root, 0, maxDepth, []*Node{root})

	// The select list projects an attribute of the first root table.
	lt.Select = []trc.SelectItem{{
		Attr: trc.Attr{Var: root.Tables[0].Var, Column: "k0"},
	}}
	return lt
}

type randGen struct {
	rng    *rand.Rand
	next   int
	blocks int // remaining block budget, keeping recovery searches small
}

func (g *randGen) freshVar() string {
	g.next++
	return fmt.Sprintf("V%d", g.next)
}

func (g *randGen) node(q trc.Quant, depth int) *Node {
	n := &Node{Quant: q}
	tables := 1 + g.rng.Intn(2) // 1 or 2 tables per block
	for i := 0; i < tables; i++ {
		n.Tables = append(n.Tables, Table{
			Var:      g.freshVar(),
			Relation: fmt.Sprintf("R%d", g.rng.Intn(4)),
		})
	}
	// If the block has two tables, join them locally.
	if len(n.Tables) == 2 {
		col := fmt.Sprintf("k%d", g.rng.Intn(6))
		l := trc.Attr{Var: n.Tables[0].Var, Column: col}
		r := trc.Attr{Var: n.Tables[1].Var, Column: col}
		n.Preds = append(n.Preds, trc.Pred{
			Left: trc.Term{Attr: &l}, Op: sqlparse.OpEq, Right: trc.Term{Attr: &r},
		})
	}
	// Occasionally add a selection predicate.
	if g.rng.Intn(3) == 0 {
		a := trc.Attr{Var: n.Tables[0].Var, Column: fmt.Sprintf("k%d", g.rng.Intn(6))}
		c := sqlparse.NumberConst(float64(g.rng.Intn(10)))
		n.Preds = append(n.Preds, trc.Pred{
			Left: trc.Term{Attr: &a}, Op: sqlparse.OpGt, Right: trc.Term{Const: &c},
		})
	}
	_ = depth
	return n
}

// grow adds 0-2 children to n (at least one child at depth 0 so trees are
// never trivial), each carrying a predicate to a random ancestor —
// guaranteeing Property 5.2 — plus occasional extra ancestor links.
func (g *randGen) grow(n *Node, depth, maxDepth int, ancestors []*Node) {
	if depth >= maxDepth {
		return
	}
	kids := g.rng.Intn(3) // 0, 1, or 2
	if depth == 0 && kids == 0 {
		kids = 1
	}
	for i := 0; i < kids; i++ {
		if g.blocks <= 0 {
			return
		}
		g.blocks--
		c := g.node(trc.NotExists, depth+1)
		// Link the child to its direct parent to satisfy Property 5.2's
		// first arm. (The second arm — linkage through grandchildren — is
		// exercised by the hand-written corpora instead; generating it
		// randomly while keeping validity is disproportionately fiddly.)
		col := fmt.Sprintf("k%d", g.rng.Intn(6))
		l := trc.Attr{Var: c.Tables[0].Var, Column: col}
		r := trc.Attr{Var: n.Tables[g.rng.Intn(len(n.Tables))].Var, Column: col}
		c.Preds = append(c.Preds, trc.Pred{
			Left: trc.Term{Attr: &l}, Op: sqlparse.OpEq, Right: trc.Term{Attr: &r},
		})
		// Occasionally add a link to a deeper ancestor (exercises the
		// "difference greater than one" arrow rule).
		if len(ancestors) > 1 && g.rng.Intn(2) == 0 {
			anc := ancestors[g.rng.Intn(len(ancestors)-1)] // strictly above parent n? any ancestor
			col := fmt.Sprintf("k%d", g.rng.Intn(6))
			l := trc.Attr{Var: c.Tables[len(c.Tables)-1].Var, Column: col}
			r := trc.Attr{Var: anc.Tables[0].Var, Column: col}
			c.Preds = append(c.Preds, trc.Pred{
				Left: trc.Term{Attr: &l}, Op: sqlparse.OpEq, Right: trc.Term{Attr: &r},
			})
		}
		n.Children = append(n.Children, c)
		g.grow(c, depth+1, maxDepth, append(ancestors, c))
	}
}
