package logictree

import (
	"context"
	"strings"
	"testing"

	"repro/internal/trc"
)

// TestFromTRCNilExpr: a nil (or rootless) TRC expression used to send
// FromTRC straight into a nil-pointer dereference. Regression test for
// the guards: the context variant reports the error, the legacy variant
// degrades to an empty tree, and the empty tree survives every
// downstream operation without panicking.
func TestFromTRCNilExpr(t *testing.T) {
	ctx := context.Background()

	for _, tc := range []struct {
		name string
		e    *trc.Expr
	}{
		{"nil expr", nil},
		{"nil root", &trc.Expr{}},
	} {
		if _, err := FromTRCContext(ctx, tc.e); err == nil {
			t.Fatalf("%s: FromTRCContext accepted it", tc.name)
		} else if !strings.Contains(err.Error(), "no root block") {
			t.Fatalf("%s: unexpected error: %v", tc.name, err)
		}

		lt := FromTRC(tc.e)
		if lt == nil || lt.Root == nil {
			t.Fatalf("%s: FromTRC returned nil tree/root", tc.name)
		}
	}
}

// TestEmptyTreeOperations: the degenerate trees the guards produce must
// be inert, not booby-trapped.
func TestEmptyTreeOperations(t *testing.T) {
	ctx := context.Background()
	for _, lt := range []*LT{{}, {Root: &Node{}}, FromTRC(nil)} {
		_ = lt.String()
		_ = lt.ToTRC()
		_ = lt.Clone()
		if _, err := lt.FlattenContext(ctx); err != nil {
			t.Fatalf("FlattenContext on empty tree: %v", err)
		}
		if _, err := lt.SimplifyContext(ctx); err != nil {
			t.Fatalf("SimplifyContext on empty tree: %v", err)
		}
	}
}
