package logictree

import (
	"strings"
	"testing"

	"repro/internal/schema"
	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// build parses, resolves, and converts a query into an LT.
func build(t *testing.T, src string, s *schema.Schema) *LT {
	t.Helper()
	q, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r, err := sqlparse.Resolve(q, s)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	e, err := trc.Convert(q, r)
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	return FromTRC(e)
}

const uniqueSetSQL = `
SELECT L1.drinker
FROM Likes L1
WHERE NOT EXISTS(
  SELECT * FROM Likes L2
  WHERE L1.drinker <> L2.drinker
  AND NOT EXISTS(
    SELECT * FROM Likes L3
    WHERE L3.drinker = L2.drinker
    AND NOT EXISTS(
      SELECT * FROM Likes L4
      WHERE L4.drinker = L1.drinker AND L4.beer = L3.beer))
  AND NOT EXISTS(
    SELECT * FROM Likes L5
    WHERE L5.drinker = L1.drinker
    AND NOT EXISTS(
      SELECT * FROM Likes L6
      WHERE L6.drinker = L2.drinker AND L6.beer = L5.beer)))`

const qOnlySQL = `
SELECT F.person
FROM Frequents F
WHERE not exists
  (SELECT * FROM Serves S
   WHERE S.bar = F.bar
   AND not exists
     (SELECT L.drink FROM Likes L
      WHERE L.person = F.person AND S.drink = L.drink))`

func TestUniqueSetLTShape(t *testing.T) {
	// Reproduces the Fig. 5 / Fig. 10a structure.
	lt := build(t, uniqueSetSQL, schema.Beers())
	if lt.MaxDepth() != 3 {
		t.Errorf("max depth = %d, want 3", lt.MaxDepth())
	}
	if lt.NodeCount() != 6 {
		t.Errorf("node count = %d, want 6", lt.NodeCount())
	}
	if lt.TableCount() != 6 {
		t.Errorf("table count = %d, want 6", lt.TableCount())
	}
	root := lt.Root
	if root.Quant != trc.Exists || len(root.Tables) != 1 || root.Tables[0].Var != "L1" {
		t.Errorf("root = %+v, want ∃ {Likes L1}", root)
	}
	if len(root.Preds) != 0 {
		t.Errorf("root has %d predicates, want 0", len(root.Preds))
	}
	l2 := root.Children[0]
	if l2.Quant != trc.NotExists || len(l2.Children) != 2 {
		t.Errorf("L2 node: quant=%v children=%d, want ∄ with 2 children", l2.Quant, len(l2.Children))
	}
	if len(l2.Preds) != 1 || l2.Preds[0].Op != sqlparse.OpNe {
		t.Errorf("L2 preds = %v, want one <> predicate", l2.Preds)
	}
	for _, c := range l2.Children {
		if c.Quant != trc.NotExists || len(c.Children) != 1 {
			t.Errorf("depth-2 node %v: want ∄ with 1 child", c.Tables)
		}
		leaf := c.Children[0]
		if leaf.Quant != trc.NotExists || len(leaf.Preds) != 2 {
			t.Errorf("depth-3 node %v: quant=%v preds=%d, want ∄ with 2 preds",
				leaf.Tables, leaf.Quant, len(leaf.Preds))
		}
	}
	if err := lt.Validate(); err != nil {
		t.Errorf("unique-set LT should be valid: %v", err)
	}
}

func TestSimplifyUniqueSet(t *testing.T) {
	// Fig. 10a → Fig. 10b: L3 and L5 become ∀, L4 and L6 become ∃,
	// while L2 (two children) stays ∄.
	lt := build(t, uniqueSetSQL, schema.Beers()).Simplify()
	l2 := lt.Root.Children[0]
	if l2.Quant != trc.NotExists {
		t.Errorf("L2 quant = %v, want ∄", l2.Quant)
	}
	for _, c := range l2.Children {
		if c.Quant != trc.ForAll {
			t.Errorf("depth-2 node %v quant = %v, want ∀", c.Tables, c.Quant)
		}
		if c.Children[0].Quant != trc.Exists {
			t.Errorf("depth-3 node %v quant = %v, want ∃",
				c.Children[0].Tables, c.Children[0].Quant)
		}
	}
	if err := lt.Validate(); err != nil {
		t.Errorf("simplified LT should be valid: %v", err)
	}
}

func TestSimplifyQOnly(t *testing.T) {
	// Fig. 2b → Fig. 2c: the ∄∄ chain under the root becomes ∀∃.
	lt := build(t, qOnlySQL, schema.Beers())
	s := lt.Root.Children[0]
	if s.Quant != trc.NotExists || s.Children[0].Quant != trc.NotExists {
		t.Fatalf("before simplify: %v / %v, want ∄ / ∄", s.Quant, s.Children[0].Quant)
	}
	lt.Simplify()
	if s.Quant != trc.ForAll || s.Children[0].Quant != trc.Exists {
		t.Errorf("after simplify: %v / %v, want ∀ / ∃", s.Quant, s.Children[0].Quant)
	}
}

func TestSimplifiedLeavesOriginalIntact(t *testing.T) {
	lt := build(t, qOnlySQL, schema.Beers())
	s := lt.Simplified()
	if lt.Root.Children[0].Quant != trc.NotExists {
		t.Error("Simplified() must not mutate the receiver")
	}
	if s.Root.Children[0].Quant != trc.ForAll {
		t.Error("Simplified() copy was not simplified")
	}
}

func TestFig24VariantsSameLT(t *testing.T) {
	// Three syntactically different queries for "sailors who reserve only
	// red boats" must have identical canonical LTs (Fig. 24).
	variants := []string{
		`SELECT S.sname FROM Sailor S
		 WHERE NOT EXISTS(
		   SELECT * FROM Reserves R WHERE R.sid = S.sid
		   AND NOT EXISTS(
		     SELECT * FROM Boat B WHERE B.color = 'red' AND R.bid = B.bid))`,
		`SELECT S.sname FROM Sailor S
		 WHERE S.sid NOT IN(
		   SELECT R.sid FROM Reserves R
		   WHERE R.bid NOT IN(
		     SELECT B.bid FROM Boat B WHERE B.color = 'red'))`,
		`SELECT S.sname FROM Sailor S
		 WHERE NOT S.sid = ANY(
		   SELECT R.sid FROM Reserves R
		   WHERE NOT R.bid = ANY(
		     SELECT B.bid FROM Boat B WHERE B.color = 'red'))`,
	}
	var first *LT
	for i, v := range variants {
		lt := build(t, v, schema.Sailors())
		if err := lt.Validate(); err != nil {
			t.Errorf("variant %d invalid: %v", i, err)
		}
		if first == nil {
			first = lt
			continue
		}
		if !Equal(first, lt) {
			t.Errorf("variant %d canonical LT differs:\n%s\nvs\n%s",
				i, first.Canonical(), lt.Canonical())
		}
	}
}

func TestQuantifiedAllDesugars(t *testing.T) {
	// "rating >= ALL (...)" ≡ ∄S2: rating < S2.rating.
	lt := build(t, `SELECT S.sname FROM Sailor S
		WHERE S.rating >= ALL (SELECT S2.rating FROM Sailor S2 WHERE S2.sid <> S.sid)`,
		schema.Sailors())
	child := lt.Root.Children[0]
	if child.Quant != trc.NotExists {
		t.Errorf("quant = %v, want ∄", child.Quant)
	}
	found := false
	for _, p := range child.Preds {
		if p.Op == sqlparse.OpLt {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a < predicate from negating >=, got %v", child.Preds)
	}
}

func TestPropertyViolationDisjunction(t *testing.T) {
	// The paper's Section 5.1 example: F.bar = 'Owl' inside the subquery
	// references no local attribute, hiding a disjunction.
	lt := build(t, `
		SELECT F.person FROM Frequents F
		WHERE NOT EXISTS (
		  SELECT * FROM Serves S
		  WHERE S.bar = F.bar AND F.bar = 'Owl')`,
		schema.Beers())
	err := lt.Validate()
	if err == nil {
		t.Fatal("expected a Property 5.1 violation")
	}
	if !strings.Contains(err.Error(), "Property 5.1") {
		t.Errorf("error = %v, want Property 5.1 mention", err)
	}
}

func TestPropertyConnectedSubqueries(t *testing.T) {
	// A subquery with no predicate linking it to its parent (and no
	// children doing so) violates Property 5.2.
	lt := build(t, `
		SELECT F.person FROM Frequents F
		WHERE NOT EXISTS (SELECT * FROM Serves S WHERE S.bar = 'Owl')`,
		schema.Beers())
	err := lt.Validate()
	if err == nil {
		t.Fatal("expected a Property 5.2 violation")
	}
	if !strings.Contains(err.Error(), "Property 5.2") {
		t.Errorf("error = %v, want Property 5.2 mention", err)
	}
}

func TestProperty52ViaGrandchildren(t *testing.T) {
	// The second arm of Property 5.2: the child block itself has no
	// predicate to its parent, but its own single child references both.
	lt := build(t, `
		SELECT L1.drinker FROM Likes L1
		WHERE NOT EXISTS (
		  SELECT * FROM Likes L2
		  WHERE L2.beer = L2.beer
		  AND NOT EXISTS (
		    SELECT * FROM Likes L3
		    WHERE L3.drinker = L1.drinker AND L3.beer = L2.beer))`,
		schema.Beers())
	if err := lt.Validate(); err != nil {
		t.Errorf("query should satisfy Property 5.2 via its grandchild: %v", err)
	}
}

func TestValidateDepthLimit(t *testing.T) {
	// Build a depth-4 chain manually; Validate must reject it.
	lt := build(t, uniqueSetSQL, schema.Beers())
	deep := lt.Root
	for len(deep.Children) > 0 {
		deep = deep.Children[0]
	}
	deep.Children = append(deep.Children, &Node{
		Quant:  trc.NotExists,
		Tables: []Table{{Var: "L9", Relation: "Likes"}},
		Preds: []trc.Pred{{
			Left:  trc.Term{Attr: &trc.Attr{Var: "L9", Column: "beer"}},
			Op:    sqlparse.OpEq,
			Right: trc.Term{Attr: &trc.Attr{Var: "L4", Column: "beer"}},
		}},
	})
	err := lt.Validate()
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("expected a depth violation, got %v", err)
	}
}

func TestStringRendersFig5Style(t *testing.T) {
	lt := build(t, uniqueSetSQL, schema.Beers())
	s := lt.String()
	for _, want := range []string{
		"Select: {L1.drinker}",
		"T: {Likes L1}",
		"T: {Likes L2}",
		"Q: ∄",
		"(L1.drinker <> L2.drinker)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTRCRendering(t *testing.T) {
	lt := build(t, uniqueSetSQL, schema.Beers())
	e := lt.ToTRC()
	s := e.String()
	for _, want := range []string{
		"{Q | ", "∃L1 ∈ Likes", "L1.drinker = Q.drinker",
		"∄L2 ∈ Likes", "L1.drinker <> L2.drinker",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("TRC rendering missing %q:\n%s", want, s)
		}
	}
	simp := lt.Simplified().ToTRC().String()
	if !strings.Contains(simp, "∀L3 ∈ Likes") || !strings.Contains(simp, "∃L4 ∈ Likes") {
		t.Errorf("simplified TRC missing ∀/∃ blocks:\n%s", simp)
	}
	ind := e.Indented()
	if len(strings.Split(ind, "\n")) < 6 {
		t.Errorf("Indented() should span multiple lines:\n%s", ind)
	}
}

func TestTRCCounts(t *testing.T) {
	lt := build(t, uniqueSetSQL, schema.Beers())
	e := lt.ToTRC()
	if e.VarCount() != 6 {
		t.Errorf("VarCount = %d, want 6", e.VarCount())
	}
	if e.MaxDepth() != 3 {
		t.Errorf("MaxDepth = %d, want 3", e.MaxDepth())
	}
}

func TestShadowedAliasRenaming(t *testing.T) {
	lt := build(t, `
		SELECT X.drinker FROM Likes X
		WHERE NOT EXISTS (SELECT * FROM Serves X WHERE X.bar = 'Owl' AND X.beer = 'ale')`,
		schema.Beers())
	inner := lt.Root.Children[0]
	if inner.Tables[0].Var == "X" {
		t.Error("shadowed alias should have been renamed")
	}
	if inner.Tables[0].Relation != "Serves" {
		t.Errorf("inner relation = %s, want Serves", inner.Tables[0].Relation)
	}
}

func TestGroupByCarried(t *testing.T) {
	lt := build(t, `
		SELECT T.AlbumId, MAX(T.Milliseconds)
		FROM Track T, Genre G
		WHERE T.GenreId = G.GenreId AND G.Name = 'Classical'
		GROUP BY T.AlbumId`,
		schema.Chinook())
	if len(lt.GroupBy) != 1 || lt.GroupBy[0].String() != "T.AlbumId" {
		t.Errorf("GroupBy = %v, want [T.AlbumId]", lt.GroupBy)
	}
	if lt.Select[1].Agg != sqlparse.AggMax {
		t.Errorf("second select item agg = %v, want MAX", lt.Select[1].Agg)
	}
}

func TestNodeOfAndDepthOf(t *testing.T) {
	lt := build(t, uniqueSetSQL, schema.Beers())
	for v, want := range map[string]int{"L1": 0, "L2": 1, "L3": 2, "L5": 2, "L4": 3, "L6": 3} {
		if d := lt.DepthOf(v); d != want {
			t.Errorf("DepthOf(%s) = %d, want %d", v, d, want)
		}
		if lt.NodeOf(v) == nil {
			t.Errorf("NodeOf(%s) = nil", v)
		}
	}
	if lt.NodeOf("nope") != nil || lt.DepthOf("nope") != -1 {
		t.Error("lookups of unknown variables should fail")
	}
}

func TestCanonicalPredOrientation(t *testing.T) {
	a := trc.Term{Attr: &trc.Attr{Var: "B", Column: "x"}}
	b := trc.Term{Attr: &trc.Attr{Var: "A", Column: "y"}}
	p := trc.Pred{Left: a, Op: sqlparse.OpLt, Right: b}
	cp := CanonicalPred(p)
	if cp.Left.Attr.Var != "A" || cp.Op != sqlparse.OpGt {
		t.Errorf("CanonicalPred = %v, want A.y > B.x", cp)
	}
	c := sqlparse.NumberConst(3)
	p2 := trc.Pred{Left: trc.Term{Const: &c}, Op: sqlparse.OpLe, Right: a}
	cp2 := CanonicalPred(p2)
	if !cp2.Right.IsConst() || cp2.Op != sqlparse.OpGe {
		t.Errorf("CanonicalPred = %v, want B.x >= 3", cp2)
	}
}
