package logictree_test

import (
	"fmt"
	"testing"

	"repro/internal/corpus"
	"repro/internal/logictree"
	"repro/internal/schema"
	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// toLT runs SQL through the forward pipeline to a flattened logic tree.
func toLT(t *testing.T, src string, s *schema.Schema) *logictree.LT {
	t.Helper()
	q, err := sqlparse.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	r, err := sqlparse.Resolve(q, s)
	if err != nil {
		t.Fatalf("resolve: %v\n%s", err, src)
	}
	e, err := trc.Convert(q, r)
	if err != nil {
		t.Fatalf("convert: %v\n%s", err, src)
	}
	return logictree.FromTRC(e).Flatten()
}

// paperQueries pairs every corpus SQL query with its schema.
func paperQueries() []struct {
	name, sql string
	s         *schema.Schema
} {
	beers := schema.Beers()
	out := []struct {
		name, sql string
		s         *schema.Schema
	}{
		{"fig1-unique-set", corpus.Fig1UniqueSet, beers},
		{"fig3-qsome", corpus.Fig3QSome, beers},
		{"fig3-qonly", corpus.Fig3QOnly, beers},
	}
	for i, v := range corpus.Fig24Variants() {
		out = append(out, struct {
			name, sql string
			s         *schema.Schema
		}{fmt.Sprintf("fig24-variant-%d", i), v, schema.Sailors()})
	}
	for i, g := range corpus.AppendixG() {
		out = append(out, struct {
			name, sql string
			s         *schema.Schema
		}{fmt.Sprintf("appendix-g-%d-%s-%s", i, g.Schema.Name, g.Pattern), g.SQL, g.Schema})
	}
	return out
}

// TestToSQLRoundTrip checks that every paper query survives
// LT → ToSQL → pipeline → LT with an identical canonical tree.
func TestToSQLRoundTrip(t *testing.T) {
	for _, tc := range paperQueries() {
		t.Run(tc.name, func(t *testing.T) {
			lt := toLT(t, tc.sql, tc.s)
			q2, err := lt.ToSQL()
			if err != nil {
				t.Fatalf("ToSQL: %v", err)
			}
			sql2 := sqlparse.Format(q2)
			lt2 := toLT(t, sql2, tc.s)
			if lt.Canonical() != lt2.Canonical() {
				t.Errorf("round trip changed the tree\noriginal:  %s\nre-derived: %s\nsql: %s",
					lt.Canonical(), lt2.Canonical(), sql2)
			}
		})
	}
}

// TestToSQLFromSimplified checks that ToSQL also accepts trees in the
// reader-friendly ∀ form: Unsimplify must undo Simplify before printing.
func TestToSQLFromSimplified(t *testing.T) {
	for _, tc := range paperQueries() {
		t.Run(tc.name, func(t *testing.T) {
			lt := toLT(t, tc.sql, tc.s)
			q2, err := lt.Simplified().ToSQL()
			if err != nil {
				t.Fatalf("ToSQL on simplified tree: %v", err)
			}
			lt2 := toLT(t, sqlparse.Format(q2), tc.s)
			if lt.Canonical() != lt2.Canonical() {
				t.Errorf("simplified round trip changed the tree\noriginal:  %s\nre-derived: %s",
					lt.Canonical(), lt2.Canonical())
			}
		})
	}
}
