package logictree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sqlparse"
	"repro/internal/trc"
)

// shuffleTree returns a deep copy with children, predicates, and
// predicate orientations randomly permuted — all changes that must not
// affect the canonical form.
func shuffleTree(rng *rand.Rand, lt *LT) *LT {
	out := lt.Clone()
	out.Walk(func(n *Node, _ int) {
		rng.Shuffle(len(n.Children), func(i, j int) {
			n.Children[i], n.Children[j] = n.Children[j], n.Children[i]
		})
		rng.Shuffle(len(n.Preds), func(i, j int) {
			n.Preds[i], n.Preds[j] = n.Preds[j], n.Preds[i]
		})
		for i, p := range n.Preds {
			if rng.Intn(2) == 0 {
				n.Preds[i] = trc.Pred{Left: p.Right, Op: p.Op.Flip(), Right: p.Left}
			}
		}
	})
	return out
}

func TestQuickCanonicalInvariantUnderShuffle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		lt := RandomValid(rand.New(rand.NewSource(seed)), 3)
		return lt.Canonical() == shuffleTree(rng, lt).Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickSimplifyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		lt := RandomValid(rand.New(rand.NewSource(seed)), 3)
		once := lt.Simplified()
		twice := once.Simplified()
		return Equal(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickFlattenIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		lt := RandomValid(rand.New(rand.NewSource(seed)), 3)
		once := lt.Flattened()
		return Equal(once, once.Flattened())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickUnsimplifyInvertsSimplify(t *testing.T) {
	f := func(seed int64) bool {
		lt := RandomValid(rand.New(rand.NewSource(seed)), 3)
		back := lt.Simplified().Unsimplify()
		return Equal(lt, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickRandomValidAlwaysValidates(t *testing.T) {
	f := func(seed int64, depth uint8) bool {
		lt := RandomValid(rand.New(rand.NewSource(seed)), int(depth%4))
		return lt.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCloneIsDeep(t *testing.T) {
	f := func(seed int64) bool {
		lt := RandomValid(rand.New(rand.NewSource(seed)), 3)
		before := lt.Canonical()
		c := lt.Clone()
		// Mutate the clone heavily.
		c.Root.Tables[0].Relation = "Mutated"
		c.Root.Quant = trc.ForAll
		if len(c.Root.Children) > 0 {
			c.Root.Children[0].Preds = nil
		}
		return lt.Canonical() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickCanonicalPredIdempotent(t *testing.T) {
	vars := []string{"A", "B", "C"}
	cols := []string{"x", "y"}
	ops := []sqlparse.Op{sqlparse.OpLt, sqlparse.OpLe, sqlparse.OpEq,
		sqlparse.OpNe, sqlparse.OpGe, sqlparse.OpGt}
	f := func(v1, c1, v2, c2, op uint8) bool {
		l := trc.Attr{Var: vars[int(v1)%len(vars)], Column: cols[int(c1)%len(cols)]}
		r := trc.Attr{Var: vars[int(v2)%len(vars)], Column: cols[int(c2)%len(cols)]}
		p := trc.Pred{
			Left:  trc.Term{Attr: &l},
			Op:    ops[int(op)%len(ops)],
			Right: trc.Term{Attr: &r},
		}
		once := CanonicalPred(p)
		twice := CanonicalPred(once)
		// Idempotent, and canonicalizing the flipped predicate gives the
		// same orientation.
		flipped := CanonicalPred(trc.Pred{Left: p.Right, Op: p.Op.Flip(), Right: p.Left})
		return once.String() == twice.String() && once.String() == flipped.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
