// Failover stampede control. The moment an instance dies or drains,
// every key it owned reroutes to ring successors whose diagram caches
// have never seen those patterns — and a popular pattern arrives as N
// simultaneous identical requests against a cold cache. Left alone,
// all N run the full build-and-verify pipeline; the failover window
// becomes a self-inflicted load spike exactly when capacity dropped.
// The stampede layer collapses it twice over, reusing the semantics of
// internal/diagcache at the router tier:
//
//   - singleflight: concurrent identical request bodies share one
//     upstream call; followers wait for the leader and replay its
//     response — but only when that response is shareable (a 200 whose
//     verify status is "verified" or absent/off, never a degraded
//     artifact or an error). An unshareable leader result sends each
//     follower on its own upstream call, so failures are never
//     amplified by replay.
//   - a short-TTL response cache with verified-only inserts: the
//     seconds after a kill are the only window where the router
//     answers from its own memory; once the survivors' pattern caches
//     are warm the TTL lapses the router back to pure proxying.
//
// Requests carrying chaos fault headers bypass the layer entirely —
// an injected fault must reach its backend and must never be replayed
// onto an innocent caller.
package router

import (
	"net/http"
	"sync"
	"time"
)

// Bounds keeping the stampede layer's memory honest: requests larger
// than stampedeMaxKeyBytes or responses larger than
// stampedeMaxBodyBytes are proxied straight through (the hot-query
// stampede this layer exists for is small-bodied by nature).
const (
	stampedeMaxKeyBytes  = 64 << 10
	stampedeMaxBodyBytes = 1 << 20
)

// sharedResp is one buffered upstream response, immutable once stored.
type sharedResp struct {
	status int
	header http.Header
	body   []byte
}

// shareable reports whether a response may be served to a caller other
// than the one whose request produced it — the router-tier restatement
// of diagcache's verified-only insert rule: status 200, never a
// degraded artifact, and a verify status of "verified" or absent
// (verification off).
func (sr *sharedResp) shareable() bool {
	if sr == nil || sr.status != http.StatusOK {
		return false
	}
	if sr.header.Get("X-Queryvis-Degraded") != "" {
		return false
	}
	switch sr.header.Get("X-Queryvis-Verify-Status") {
	case "", "off", "verified":
		return true
	}
	return false
}

type stampedeEntry struct {
	sr      *sharedResp
	expires time.Time
}

// stampedeFlight is one in-progress leader call; followers wait on
// done and read sr (nil when the leader's result was unshareable).
type stampedeFlight struct {
	done chan struct{}
	sr   *sharedResp
}

// stampede is the router-side singleflight plus TTL response cache.
type stampede struct {
	mu      sync.Mutex
	entries map[string]*stampedeEntry
	flights map[string]*stampedeFlight

	ttl        time.Duration
	maxEntries int
}

func newStampede(ttl time.Duration, maxEntries int) *stampede {
	return &stampede{
		entries:    make(map[string]*stampedeEntry),
		flights:    make(map[string]*stampedeFlight),
		ttl:        ttl,
		maxEntries: maxEntries,
	}
}

// get returns a fresh cached response for key, nil on miss or expiry.
func (s *stampede) get(key string, now time.Time) *sharedResp {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[key]
	if e == nil {
		return nil
	}
	if now.After(e.expires) {
		delete(s.entries, key)
		return nil
	}
	return e.sr
}

// join enters the singleflight for key: the first caller becomes the
// leader (and MUST call complete exactly once); later callers get the
// existing flight to wait on.
func (s *stampede) join(key string) (*stampedeFlight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flights[key]; ok {
		return f, false
	}
	f := &stampedeFlight{done: make(chan struct{})}
	s.flights[key] = f
	return f, true
}

// complete resolves a leader's flight: followers wake with sr (nil when
// the outcome was unshareable), and a shareable response is inserted
// into the TTL cache. Reports whether the insert happened.
func (s *stampede) complete(key string, f *stampedeFlight, sr *sharedResp, now time.Time) bool {
	if sr != nil && (!sr.shareable() || len(sr.body) > stampedeMaxBodyBytes) {
		sr = nil
	}
	inserted := false
	s.mu.Lock()
	delete(s.flights, key)
	if sr != nil {
		if len(s.entries) >= s.maxEntries {
			s.pruneLocked(now)
		}
		if len(s.entries) < s.maxEntries {
			s.entries[key] = &stampedeEntry{sr: sr, expires: now.Add(s.ttl)}
			inserted = true
		}
	}
	s.mu.Unlock()
	f.sr = sr
	close(f.done)
	return inserted
}

// pruneLocked drops expired entries; if none have expired the cache is
// genuinely full of live entries and the insert is skipped — with a
// TTL this short, "full" resolves itself within seconds.
func (s *stampede) pruneLocked(now time.Time) {
	for k, e := range s.entries {
		if now.After(e.expires) {
			delete(s.entries, k)
		}
	}
}

// size reports resident cache entries (expired-but-unswept included).
func (s *stampede) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
