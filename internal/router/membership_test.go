// Black-box tests for the live-membership tentpole against
// controllable httptest backends: the authenticated admin surface,
// runtime join/eject with minimal key movement, drain's
// zero-movement-then-removal contract, probe hysteresis, hot-pattern
// replication, and failover stampede control.
package router_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leak"
	"repro/internal/router"
	"repro/internal/telemetry"
)

const adminToken = "test-ring-secret"

// adminDo issues one admin call and returns status plus decoded body.
func adminDo(t *testing.T, method, url, token string, body any) (int, http.Header, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

func ringStatusOf(t *testing.T, raw []byte) router.RingStatus {
	t.Helper()
	var rs router.RingStatus
	if err := json.Unmarshal(raw, &rs); err != nil {
		t.Fatalf("malformed ring admin body %.200s: %v", raw, err)
	}
	return rs
}

// TestAdminSurfaceAuth: no token configured ⇒ 403 for everyone; wrong
// token ⇒ 401; the right token works — and every router-originated
// error body carries a category and an X-Request-Id.
func TestAdminSurfaceAuth(t *testing.T) {
	t.Cleanup(leak.Check(t))
	var hits [8]atomic.Int64

	// Router without a token: the surface is disabled outright.
	_, frontOff, _ := fakeRing(t, 1, okBackend(&hits), nil)
	st, hdr, raw := adminDo(t, http.MethodPost, frontOff.URL+"/v1/ring/instances",
		"whatever", map[string]string{"url": "http://127.0.0.1:1"})
	if st != http.StatusForbidden {
		t.Fatalf("tokenless router: admin status %d body %.200s, want 403", st, raw)
	}
	if hdr.Get("X-Request-Id") == "" {
		t.Fatal("admin 403 without X-Request-Id")
	}
	var eb struct {
		Error struct {
			Category  string `json:"category"`
			RequestID string `json:"request_id"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Category != "admin_disabled" {
		t.Fatalf("403 body %.200s, want category admin_disabled", raw)
	}
	if eb.Error.RequestID != hdr.Get("X-Request-Id") {
		t.Fatal("request_id in body disagrees with the X-Request-Id header")
	}

	// Router with a token: wrong creds bounce, right creds act.
	extra := httptest.NewServer(okBackend(&hits)(7))
	t.Cleanup(extra.Close)
	rt, front, _ := fakeRing(t, 1, okBackend(&hits), func(c *router.Config) {
		c.AdminToken = adminToken
	})
	if st, _, _ := adminDo(t, http.MethodPost, front.URL+"/v1/ring/instances",
		"wrong", map[string]string{"url": extra.URL}); st != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", st)
	}
	st, _, raw = adminDo(t, http.MethodPost, front.URL+"/v1/ring/instances",
		adminToken, map[string]string{"url": extra.URL})
	if st != http.StatusOK {
		t.Fatalf("join: status %d body %.200s", st, raw)
	}
	rs := ringStatusOf(t, raw)
	if rs.Status != "joined" || len(rs.Members) != 2 || rs.Epoch != 2 {
		t.Fatalf("join reported %+v", rs)
	}
	if got := rt.State().Epoch; got != 2 {
		t.Fatalf("healthz epoch %d after join, want 2", got)
	}

	// Unknown member and last-member refusals keep their categories.
	if st, _, _ = adminDo(t, http.MethodDelete,
		front.URL+"/v1/ring/instances?url=http://127.0.0.1:9", adminToken, nil); st != http.StatusNotFound {
		t.Fatalf("eject of a stranger: status %d, want 404", st)
	}
	if st, _, _ = adminDo(t, http.MethodDelete,
		front.URL+"/v1/ring/instances?url="+extra.URL, adminToken, nil); st != http.StatusOK {
		t.Fatalf("eject: status %d", st)
	}
	if st, _, _ = adminDo(t, http.MethodDelete,
		front.URL+"/v1/ring/instances?url="+rt.State().Instances[0].URL, adminToken, nil); st != http.StatusConflict {
		t.Fatalf("last-member eject: status %d, want 409", st)
	}
}

// TestLiveJoinShiftsBoundedKeyspace: joining a fourth instance on a
// live router moves traffic onto it — but only the newcomer's share.
// Keys are replayed against the same router before and after the join;
// every key that changed owner must have moved TO the newcomer, and at
// most ~K/(N+1)+ε of them.
func TestLiveJoinShiftsBoundedKeyspace(t *testing.T) {
	t.Cleanup(leak.Check(t))
	const keys = 120
	var mu sync.Mutex
	owner := make(map[string]string) // sql → backend URL that served it
	hf := func(self string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			var req struct {
				SQL string `json:"sql"`
			}
			_ = json.NewDecoder(r.Body).Decode(&req)
			mu.Lock()
			owner[req.SQL] = self
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"diagram": "digraph {}"})
		}
	}
	backends := make([]*httptest.Server, 4)
	urls := make([]string, 4)
	for i := range backends {
		srv := httptest.NewUnstartedServer(nil)
		srv.Start()
		urls[i] = srv.URL
		srv.Config.Handler = hf(srv.URL)
		backends[i] = srv
		t.Cleanup(srv.Close)
	}

	rt, err := router.New(router.Config{
		Backends:       urls[:3],
		HealthInterval: 25 * time.Millisecond,
		AdminToken:     adminToken,
		Metrics:        telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	sqls := make([]string, keys)
	for i := range sqls {
		sqls[i] = fmt.Sprintf("%s -- key %d", qSome, i)
	}
	route := func() map[string]string {
		for _, sql := range sqls {
			if st, _, raw := postJSON(t, front.URL+"/v1/diagram", diagramReq(sql)); st != 200 {
				t.Fatalf("status %d body %.120s", st, raw)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		snap := make(map[string]string, len(owner))
		for k, v := range owner {
			snap[k] = v
		}
		return snap
	}

	before := route()
	if st, _, raw := adminDo(t, http.MethodPost, front.URL+"/v1/ring/instances",
		adminToken, map[string]string{"url": urls[3]}); st != http.StatusOK {
		t.Fatalf("join: status %d body %.200s", st, raw)
	}
	after := route()

	moved := 0
	for _, sql := range sqls {
		if before[sql] != after[sql] {
			moved++
			if after[sql] != urls[3] {
				t.Errorf("key %.40q moved %s → %s, not to the newcomer", sql, before[sql], after[sql])
			}
		}
	}
	// Expectation K/(N+1) = 30; allow ×1.5 + ε slack for vnode variance.
	if limit := keys*3/(2*4) + 6; moved == 0 || moved > limit {
		t.Fatalf("join moved %d of %d keys (limit %d)", moved, keys, limit)
	}
}

// TestDrainMovesNothingUntilRemoval: draining a member instantly stops
// new assignments to it while every other key keeps its owner (the
// ring itself is untouched); once idle, the member leaves the ring and
// the epoch bumps.
func TestDrainMovesNothingUntilRemoval(t *testing.T) {
	t.Cleanup(leak.Check(t))
	const keys = 90
	var mu sync.Mutex
	owner := make(map[string]string)
	hf := func(self string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			var req struct {
				SQL string `json:"sql"`
			}
			_ = json.NewDecoder(r.Body).Decode(&req)
			mu.Lock()
			owner[req.SQL] = self
			mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"diagram": "digraph {}"})
		}
	}
	backends := make([]*httptest.Server, 3)
	urls := make([]string, 3)
	for i := range backends {
		srv := httptest.NewUnstartedServer(nil)
		srv.Start()
		urls[i] = srv.URL
		srv.Config.Handler = hf(srv.URL)
		backends[i] = srv
		t.Cleanup(srv.Close)
	}
	rt, err := router.New(router.Config{
		Backends:          urls,
		HealthInterval:    25 * time.Millisecond,
		DrainPollInterval: 10 * time.Millisecond,
		AdminToken:        adminToken,
		Metrics:           telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	sqls := make([]string, keys)
	for i := range sqls {
		sqls[i] = fmt.Sprintf("%s -- drainkey %d", qSome, i)
	}
	route := func() map[string]string {
		for _, sql := range sqls {
			if st, _, raw := postJSON(t, front.URL+"/v1/diagram", diagramReq(sql)); st != 200 {
				t.Fatalf("status %d body %.120s", st, raw)
			}
		}
		mu.Lock()
		defer mu.Unlock()
		snap := make(map[string]string, len(owner))
		for k, v := range owner {
			snap[k] = v
		}
		return snap
	}

	before := route()
	victim := urls[1]
	st, _, raw := adminDo(t, http.MethodPost, front.URL+"/v1/ring/drain",
		adminToken, map[string]string{"url": victim})
	if st != http.StatusAccepted {
		t.Fatalf("drain: status %d body %.200s", st, raw)
	}
	after := route()

	// Zero movement for keys the victim did not own; the victim's own
	// keys reroute to their ring successors, not to one scapegoat.
	for _, sql := range sqls {
		switch {
		case before[sql] == victim && after[sql] == victim:
			t.Errorf("key %.40q still routed to the draining member", sql)
		case before[sql] != victim && after[sql] != before[sql]:
			t.Errorf("drain moved unrelated key %.40q: %s → %s", sql, before[sql], after[sql])
		}
	}

	// With in-flight at zero, the waiter removes the member: epoch bumps
	// and the member list shrinks.
	waitUntil(t, 5*time.Second, func() bool { return len(rt.State().Instances) == 2 })
	if st := rt.State(); st.Epoch < 2 {
		t.Fatalf("epoch %d after drain removal, want ≥ 2", st.Epoch)
	}
	for _, in := range rt.State().Instances {
		if in.URL == victim {
			t.Fatal("victim still in the member list after drain completed")
		}
	}
	// Readmitting the drained URL is a plain join: keys flow back.
	if st, _, _ := adminDo(t, http.MethodPost, front.URL+"/v1/ring/instances",
		adminToken, map[string]string{"url": victim}); st != http.StatusOK {
		t.Fatalf("rejoin after drain: status %d", st)
	}
	waitUntil(t, 5*time.Second, func() bool { return len(rt.State().Instances) == 3 })
}

// TestProbeHysteresisFiltersFlapping: an instance whose healthz flaps
// pass/fail on alternate probes never accumulates the consecutive
// streak needed to flip the verdict — the ring's eligibility set holds
// steady. A solid failure streak still marks it down.
func TestProbeHysteresisFiltersFlapping(t *testing.T) {
	t.Cleanup(leak.Check(t))
	var flap atomic.Int64 // alternation counter while flapping
	var flapping atomic.Bool
	var solid atomic.Bool // healthz always fails when true
	flapping.Store(true)
	hf := func(i int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				if solid.Load() || (i == 0 && flapping.Load() && flap.Add(1)%2 == 0) {
					w.WriteHeader(http.StatusServiceUnavailable)
					return
				}
				w.WriteHeader(http.StatusOK)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"diagram": "digraph {}"})
		}
	}
	rt, _, _ := fakeRing(t, 1, hf, func(c *router.Config) {
		c.HealthInterval = 10 * time.Millisecond
		c.ProbeDownAfter = 2
		c.ProbeUpAfter = 2
	})

	// Flapping phase: ~30 probe cycles, verdict must never flip.
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if !rt.State().Instances[0].Healthy {
			t.Fatal("alternating probe failures flipped the verdict despite hysteresis")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Solid failure: two consecutive misses mark it down…
	solid.Store(true)
	waitUntil(t, 5*time.Second, func() bool { return !rt.State().Instances[0].Healthy })
	// …and a solid recovery streak readmits it.
	flapping.Store(false)
	solid.Store(false)
	waitUntil(t, 5*time.Second, func() bool { return rt.State().Instances[0].Healthy })
}

// TestHotPatternReplicationSpreadsViralKey: a pattern pushed past the
// promotion threshold stops saturating its owner — requests rotate
// across the first HotReplicas candidates, with no instance serving
// more than (1/R + 25%) of the hot traffic.
func TestHotPatternReplicationSpreadsViralKey(t *testing.T) {
	t.Cleanup(leak.Check(t))
	var hits [8]atomic.Int64
	rt, front, _ := fakeRing(t, 3, okBackend(&hits), func(c *router.Config) {
		c.HotThresholdRPS = 30
		c.HotHalfLife = 200 * time.Millisecond
		c.HotReplicas = 2
	})

	body := diagramReq(qSome)
	// Warm phase: push the pattern over the threshold.
	waitUntil(t, 10*time.Second, func() bool {
		for i := 0; i < 20; i++ {
			if st, _, _ := postJSON(t, front.URL+"/v1/diagram", body); st != 200 {
				t.Fatalf("status %d during warmup", st)
			}
		}
		return rt.State().HotPatterns >= 1
	})

	// Measured phase: the promoted pattern must spread.
	for i := range hits {
		hits[i].Store(0)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if st, _, _ := postJSON(t, front.URL+"/v1/diagram", body); st != 200 {
			t.Fatalf("status %d during measurement", st)
		}
	}
	served, max := 0, int64(0)
	for i := range hits {
		if h := hits[i].Load(); h > 0 {
			served++
			if h > max {
				max = h
			}
		}
	}
	if served < 2 {
		t.Fatalf("promoted pattern still served by %d instance(s)", served)
	}
	// Acceptance bound: no instance above 1/R + 25% of the hot traffic.
	if limit := int64(float64(n) * (1.0/2 + 0.25)); max > limit {
		t.Fatalf("one instance served %d/%d of a promoted pattern (limit %d)", max, n, limit)
	}
	if v := rt.Registry().Value("queryvis_router_hot_promotions_total"); v < 1 {
		t.Fatalf("promotion counter %v, want ≥ 1", v)
	}
}

// TestStampedeCollapsesColdWindow: with stampede control on, N
// concurrent identical requests produce one backend call; followers
// replay the leader's verified response and the short-TTL cache
// absorbs the immediate aftermath. Unshareable responses are never
// replayed, and fault-injected requests bypass the layer.
func TestStampedeCollapsesColdWindow(t *testing.T) {
	t.Cleanup(leak.Check(t))
	var slowHits atomic.Int64
	var degrade atomic.Bool
	hf := func(i int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			slowHits.Add(1)
			time.Sleep(80 * time.Millisecond) // wide window for followers to pile in
			if degrade.Load() {
				w.Header().Set("X-QueryVis-Degraded", "worker_crash")
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"diagram": "digraph {}"})
		}
	}
	rt, front, _ := fakeRing(t, 1, hf, func(c *router.Config) {
		c.StampedeTTL = 300 * time.Millisecond
	})

	const stormers = 10
	var wg sync.WaitGroup
	codes := make([]int, stormers)
	for g := 0; g < stormers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			codes[g], _, _ = postJSON(t, front.URL+"/v1/diagram", diagramReq(qSome))
		}(g)
	}
	wg.Wait()
	for g, st := range codes {
		if st != 200 {
			t.Fatalf("stormer %d: status %d", g, st)
		}
	}
	if n := slowHits.Load(); n != 1 {
		t.Fatalf("%d identical concurrent requests made %d backend calls, want 1", stormers, n)
	}
	st := rt.State()
	if st.Stampede == nil || st.Stampede.Coalesced+st.Stampede.Hits != stormers-1 {
		t.Fatalf("stampede accounting %+v, want %d followers served", st.Stampede, stormers-1)
	}

	// Within the TTL a repeat is answered by the router alone.
	code, hdr, _ := postJSON(t, front.URL+"/v1/diagram", diagramReq(qSome))
	if code != 200 || hdr.Get("X-Queryvis-Router-Cache") != "hit" {
		t.Fatalf("TTL repeat: status %d cache header %q, want 200/hit", code, hdr.Get("X-Queryvis-Router-Cache"))
	}
	if slowHits.Load() != 1 {
		t.Fatal("TTL repeat reached the backend")
	}

	// Degraded responses are never shared: every stormer pays its own
	// trip once the leader's answer comes back unshareable.
	time.Sleep(350 * time.Millisecond) // let the cached entry lapse
	degrade.Store(true)
	slowHits.Store(0)
	distinct := diagramReq(qSome + " -- degraded round")
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			postJSON(t, front.URL+"/v1/diagram", distinct)
		}()
	}
	wg.Wait()
	if n := slowHits.Load(); n != 4 {
		t.Fatalf("degraded responses coalesced: %d backend calls for 4 stormers, want 4", n)
	}

	// Fault-injected requests bypass the layer entirely.
	degrade.Store(false)
	slowHits.Store(0)
	req, _ := json.Marshal(diagramReq(qSome + " -- faulted"))
	for i := 0; i < 2; i++ {
		hreq, err := http.NewRequest(http.MethodPost, front.URL+"/v1/diagram", strings.NewReader(string(req)))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("X-Fault-Seed", "7")
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if n := slowHits.Load(); n != 2 {
		t.Fatalf("fault-injected requests were cached: %d backend calls, want 2", n)
	}
}
