// White-box tests for the stampede layer: the verified-only
// shareability rule, singleflight leader/follower resolution, TTL
// expiry, and the bounded cache. Time is passed explicitly.
package router

import (
	"fmt"
	"net/http"
	"testing"
	"time"
)

func respWith(status int, hdr map[string]string) *sharedResp {
	h := http.Header{}
	for k, v := range hdr {
		h.Set(k, v)
	}
	return &sharedResp{status: status, header: h, body: []byte(`{"diagram":"digraph {}"}`)}
}

func TestShareableFollowsVerifiedOnlyRule(t *testing.T) {
	cases := []struct {
		name string
		sr   *sharedResp
		want bool
	}{
		{"plain 200", respWith(200, nil), true},
		{"verified", respWith(200, map[string]string{"X-QueryVis-Verify-Status": "verified"}), true},
		{"verify off", respWith(200, map[string]string{"X-QueryVis-Verify-Status": "off"}), true},
		{"failed verify", respWith(200, map[string]string{"X-QueryVis-Verify-Status": "failed"}), false},
		{"timeout verify", respWith(200, map[string]string{"X-QueryVis-Verify-Status": "timeout"}), false},
		{"degraded", respWith(200, map[string]string{"X-QueryVis-Degraded": "worker_crash"}), false},
		{"shed 503", respWith(503, nil), false},
		{"client error", respWith(400, nil), false},
		{"nil", nil, false},
	}
	for _, c := range cases {
		if got := c.sr.shareable(); got != c.want {
			t.Errorf("%s: shareable() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStampedeSingleflightResolution(t *testing.T) {
	s := newStampede(time.Second, 16)
	now := time.Unix(5000, 0)

	f1, leader := s.join("k")
	if !leader {
		t.Fatal("first join must lead")
	}
	f2, leader2 := s.join("k")
	if leader2 || f2 != f1 {
		t.Fatal("second join must follow the existing flight")
	}

	sr := respWith(200, nil)
	if !s.complete("k", f1, sr, now) {
		t.Fatal("shareable 200 must be inserted")
	}
	select {
	case <-f2.done:
	default:
		t.Fatal("followers not woken by complete")
	}
	if f2.sr != sr {
		t.Fatal("follower did not receive the leader's response")
	}
	if got := s.get("k", now.Add(500*time.Millisecond)); got != sr {
		t.Fatal("shareable response not served from the TTL cache")
	}
	if got := s.get("k", now.Add(2*time.Second)); got != nil {
		t.Fatal("entry survived past its TTL")
	}

	// A fresh flight for the same key leads again once resolved.
	if _, leader := s.join("k"); !leader {
		t.Fatal("key not released after complete")
	}
}

func TestStampedeUnshareableResolvesNilAndCachesNothing(t *testing.T) {
	s := newStampede(time.Second, 16)
	now := time.Unix(6000, 0)
	f, _ := s.join("k")
	if s.complete("k", f, respWith(503, nil), now) {
		t.Fatal("a 503 must not be inserted")
	}
	if f.sr != nil {
		t.Fatal("followers must see nil for an unshareable outcome")
	}
	if s.get("k", now) != nil || s.size() != 0 {
		t.Fatal("unshareable outcome leaked into the cache")
	}
}

func TestStampedeCacheStaysBounded(t *testing.T) {
	s := newStampede(time.Hour, 8) // nothing expires during the test
	now := time.Unix(7000, 0)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k-%d", i)
		f, _ := s.join(k)
		s.complete(k, f, respWith(200, nil), now)
	}
	if n := s.size(); n > 8 {
		t.Fatalf("stampede cache holds %d entries past its cap of 8", n)
	}
}

func TestStampedeOversizedBodyNotShared(t *testing.T) {
	s := newStampede(time.Second, 16)
	now := time.Unix(8000, 0)
	sr := respWith(200, nil)
	sr.body = make([]byte, stampedeMaxBodyBytes+1)
	f, _ := s.join("k")
	if s.complete("k", f, sr, now) {
		t.Fatal("oversized body must not be inserted")
	}
	if f.sr != nil {
		t.Fatal("oversized body must not be replayed to followers")
	}
}
