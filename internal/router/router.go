// Package router is the scale-out front door: a stdlib-only
// consistent-hash router that shards QueryVis requests across N
// queryvisd instances by canonical pattern key, with active health
// checking, per-instance circuit breaking, and bounded failover along
// the ring. Its one hard promise is the same one the daemon makes —
// every request ends in a well-formed response: a proxied answer, a
// backend's own categorized error, or the router's honest 503 with
// Retry-After when the whole ring is unhealthy. Never a hang, never a
// silent drop.
//
// Sharding key: the router cannot parse SQL (that is what the backends'
// sacrificial workers are for), so it learns the canonical pattern key
// the same way the pool's affinity does — from the X-Queryvis-Pattern
// header backends stamp on diagram responses, remembered per body hash
// in a bounded table. A body seen before routes by its pattern, so
// isomorphic queries (same pattern, different literals) land on the
// instance whose diagram cache is warm; a cold body routes by its own
// hash, which is still deterministic and evenly spread.
package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/telemetry"
)

// Metric families exported by the router; healthz reads these same
// series back, so the two endpoints can never disagree.
const (
	mRequests  = "queryvis_router_requests_total"
	mProxyDur  = "queryvis_router_request_duration_seconds"
	mFailovers = "queryvis_router_failovers_total"
	mNoHealthy = "queryvis_router_no_healthy_total"
	mInstReqs  = "queryvis_router_instance_requests_total"
	mInstFails = "queryvis_router_instance_failures_total"
	mInstUp    = "queryvis_router_instance_healthy"
	mInstOpen  = "queryvis_router_breaker_open"
	mKeytab    = "queryvis_router_pattern_keys"
)

// outcome labels for mRequests.
var outcomes = []string{"proxied", "shed", "error"}

// Config tunes the router. Zero fields take the documented defaults.
type Config struct {
	// Backends are the instance base URLs (e.g. "http://127.0.0.1:8081").
	// Required, at least one.
	Backends []string
	// Replicas is the number of virtual ring points per instance
	// (default 64).
	Replicas int
	// HealthInterval is the active health-check period (default 250ms).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// BreakerThreshold opens an instance's circuit after this many
	// consecutive request-path failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an opened circuit keeps the instance
	// out of rotation before the timer alone re-admits it; a passing
	// health probe re-admits it sooner (default 1s).
	BreakerCooldown time.Duration
	// InstanceAttempts is the retrying client's per-instance attempt
	// budget (default 2: the backend already retried its own worker
	// once; the ring is the real retry).
	InstanceAttempts int
	// InstanceMaxElapsed caps the total time spent retrying one
	// instance before failing over (default 500ms) — time burned on a
	// sick instance is stolen from its healthy ring successor.
	InstanceMaxElapsed time.Duration
	// InstanceTimeout bounds one proxied attempt end-to-end
	// (default 30s).
	InstanceTimeout time.Duration
	// RetryAfter is the hint stamped on the router's own 503 when the
	// ring is fully unhealthy (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps a routed request body; bigger bodies get a 413
	// without touching a backend (default 4 MiB).
	MaxBodyBytes int64
	// Metrics receives the router's series; nil creates a private
	// registry.
	Metrics *telemetry.Registry
	// Logger, when non-nil, receives routing events.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.InstanceAttempts <= 0 {
		c.InstanceAttempts = 2
	}
	if c.InstanceMaxElapsed <= 0 {
		c.InstanceMaxElapsed = 500 * time.Millisecond
	}
	if c.InstanceTimeout <= 0 {
		c.InstanceTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	return c
}

// Router is the handler. It proxies POST API calls by pattern key and
// serves its own /v1/healthz and /v1/metrics (the router's, not a
// backend's — a load balancer's health is a different fact from any
// instance's health).
type Router struct {
	cfg   Config
	ring  *ring
	insts []*instance
	keys  *keytab

	hc          *client.Client  // proxy path: retries + MaxElapsed cap
	probeClient *http.Client    // health path: no retries, short timeout
	transport   *http.Transport // owned by the router; idle conns die at Close

	reg       *telemetry.Registry
	requests  map[string]*telemetry.Counter
	proxyDur  *telemetry.Histogram
	failovers *telemetry.Counter
	noHealthy *telemetry.Counter

	closed chan struct{}
	once   sync.Once
	loops  sync.WaitGroup
}

// New builds the router and starts its health prober.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: Config.Backends is required")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:    cfg,
		ring:   newRing(len(cfg.Backends), cfg.Replicas),
		keys:   newKeytab(),
		closed: make(chan struct{}),
		reg:    cfg.Metrics,
	}
	if rt.reg == nil {
		rt.reg = telemetry.NewRegistry()
	}
	rt.transport = &http.Transport{MaxIdleConnsPerHost: 32}
	rt.hc = client.New(client.Config{
		HTTPClient:  &http.Client{Timeout: cfg.InstanceTimeout, Transport: rt.transport},
		MaxAttempts: cfg.InstanceAttempts,
		BaseBackoff: 25 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		MaxElapsed:  cfg.InstanceMaxElapsed,
	})
	rt.probeClient = &http.Client{Timeout: cfg.ProbeTimeout, Transport: rt.transport}

	rt.requests = make(map[string]*telemetry.Counter, len(outcomes))
	for _, o := range outcomes {
		rt.requests[o] = rt.reg.Counter(mRequests, "Routed requests by outcome.", "outcome", o)
	}
	rt.proxyDur = rt.reg.Histogram(mProxyDur, "Routed request latency, failovers included.",
		[]float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10})
	rt.failovers = rt.reg.Counter(mFailovers, "Requests moved to the next ring instance after a failure.")
	rt.noHealthy = rt.reg.Counter(mNoHealthy, "Requests shed because no ring instance was eligible.")
	rt.reg.GaugeFunc(mKeytab, "Learned body-hash→pattern routing keys.",
		func() float64 { return float64(rt.keys.len()) })

	for _, url := range cfg.Backends {
		in := &instance{url: url}
		in.healthy.Store(true) // optimistic: see instance.healthy
		rt.insts = append(rt.insts, in)
		rt.reg.Counter(mInstReqs, "Proxied attempts per instance.", "instance", in.url)
		rt.reg.Counter(mInstFails, "Failed attempts per instance.", "instance", in.url)
		rt.reg.GaugeFunc(mInstUp, "Prober verdict per instance (1 healthy).", func() float64 {
			if in.healthy.Load() {
				return 1
			}
			return 0
		}, "instance", in.url)
		rt.reg.GaugeFunc(mInstOpen, "Circuit breaker state per instance (1 open).", func() float64 {
			if in.breakerOpen(time.Now()) {
				return 1
			}
			return 0
		}, "instance", in.url)
	}

	rt.loops.Add(1)
	go rt.prober()
	return rt, nil
}

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *telemetry.Registry { return rt.reg }

// Close stops the health prober and releases idle connections. Safe to
// call more than once.
func (rt *Router) Close() {
	rt.once.Do(func() { close(rt.closed) })
	rt.loops.Wait()
	rt.transport.CloseIdleConnections()
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/healthz":
		rt.handleHealthz(w, r)
	case "/v1/metrics":
		rt.reg.WritePrometheus(w)
	default:
		rt.route(w, r)
	}
}

// route proxies one API request along its key's ring order.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		rt.fail(w, http.StatusBadRequest, "bad_request", "reading request body failed")
		return
	}
	if int64(len(body)) > rt.cfg.MaxBodyBytes {
		rt.fail(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds the router's %d-byte cap", rt.cfg.MaxBodyBytes))
		return
	}

	bodyHash := hash64(body)
	key := rt.keys.get(bodyHash)
	if key == "" {
		key = strconv.FormatUint(bodyHash, 16)
	}
	order := rt.ring.order(key)

	// The failover schedule: the key's eligible instances in ring order.
	// When the breaker and prober have disqualified everyone, that is
	// the fully-unhealthy case — shed honestly rather than queue blind.
	now := time.Now()
	candidates := order[:0:0]
	for _, idx := range order {
		if rt.insts[idx].eligible(now) {
			candidates = append(candidates, idx)
		}
	}
	if len(candidates) == 0 {
		rt.noHealthy.Inc()
		rt.requests["shed"].Inc()
		rt.shed(w)
		return
	}

	var lastErr error
	for i, idx := range candidates {
		in := rt.insts[idx]
		last := i == len(candidates)-1
		rt.reg.Counter(mInstReqs, "Proxied attempts per instance.", "instance", in.url).Inc()
		resp, err := rt.forward(r, in, body)
		if err != nil {
			lastErr = err
			rt.reg.Counter(mInstFails, "Failed attempts per instance.", "instance", in.url).Inc()
			in.recordFailure(rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
			rt.log("instance attempt failed", "instance", in.url, "err", err, "failover", !last)
			if !last {
				rt.failovers.Inc()
			}
			continue
		}
		if retryElsewhere(resp.StatusCode) && !last {
			// The instance shed or is failing; its ring successor gets the
			// request. Only transport errors and 5xx count against the
			// breaker — a 429 is the load shedder doing its job, not a
			// fault.
			if resp.StatusCode != http.StatusTooManyRequests {
				rt.reg.Counter(mInstFails, "Failed attempts per instance.", "instance", in.url).Inc()
				in.recordFailure(rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
			}
			drain(resp)
			rt.failovers.Inc()
			rt.log("instance shed, failing over", "instance", in.url, "status", resp.StatusCode)
			continue
		}
		// A response to deliver — a success, a categorized client error,
		// or (on the last candidate) the backend's own shed response,
		// passed through verbatim: it is well-formed and honest, and the
		// backend's Retry-After is better informed than ours.
		if resp.StatusCode < http.StatusInternalServerError && resp.StatusCode != http.StatusTooManyRequests {
			in.recordSuccess()
		}
		if pat := resp.Header.Get("X-Queryvis-Pattern"); pat != "" {
			rt.keys.put(bodyHash, pat)
		}
		rt.requests["proxied"].Inc()
		rt.proxyDur.Observe(time.Since(start).Seconds())
		copyResponse(w, resp)
		return
	}
	// Every candidate failed at the transport level: nothing well-formed
	// to pass through, so answer with the router's own typed 503.
	rt.requests["error"].Inc()
	rt.proxyDur.Observe(time.Since(start).Seconds())
	rt.log("all candidates failed", "err", lastErr)
	rt.shed(w)
}

// forward sends the request to one instance through the shared retrying
// client (which retries 429/503 briefly and honors Retry-After, capped
// by InstanceMaxElapsed so a sick instance cannot monopolize the
// failover budget).
func (rt *Router) forward(r *http.Request, in *instance, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, in.url+r.URL.Path, readerFor(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		if isHopByHop(k) {
			continue
		}
		req.Header[k] = vs
	}
	return rt.hc.Do(req)
}

// retryElsewhere reports whether a response status means the next ring
// instance should get the request instead: the instance is shedding
// (429), draining or crashed (503), or behind a broken gateway (502).
func retryElsewhere(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// shed writes the router's own honest 503: a categorized error body in
// the service's wire shape plus Retry-After, so a well-behaved client
// (internal/client) backs off and retries instead of seeing a blank
// failure.
func (rt *Router) shed(w http.ResponseWriter) {
	w.Header().Set("Retry-After",
		strconv.Itoa(int(math.Ceil(rt.cfg.RetryAfter.Seconds()))))
	rt.fail(w, http.StatusServiceUnavailable, "overloaded",
		"no healthy instance in the ring; retry shortly")
}

// fail writes a categorized error in the same wire shape the backends
// use, so router-origin and instance-origin failures are
// indistinguishable to clients.
func (rt *Router) fail(w http.ResponseWriter, status int, category, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]any{"category": category, "message": msg},
	})
}

// copyResponse streams an upstream response through untouched.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		if isHopByHop(k) {
			continue
		}
		w.Header()[k] = vs
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func isHopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Proxy-Connection", "Te", "Trailer",
		"Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

// drain discards a response that will not be delivered so the transport
// can reuse the connection.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

// readerFor wraps a body for http.NewRequest — a *bytes.Reader, so the
// request gets a GetBody rewinder and the shared client may retry it;
// nil for empty keeps bodyless semantics for GETs.
func readerFor(body []byte) io.Reader {
	if len(body) == 0 {
		return nil
	}
	return bytes.NewReader(body)
}

func (rt *Router) log(msg string, args ...any) {
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Info(msg, args...)
	}
}
