// Package router is the scale-out front door: a stdlib-only
// consistent-hash router that shards QueryVis requests across N
// queryvisd instances by canonical pattern key, with live ring
// membership, active health checking with hysteresis, per-instance
// circuit breaking, hot-pattern replication, failover stampede
// control, and bounded failover along the ring. Its one hard promise
// is the same one the daemon makes — every request ends in a
// well-formed response: a proxied answer, a backend's own categorized
// error, or the router's honest 503 with Retry-After when the whole
// ring is unhealthy. Never a hang, never a silent drop.
//
// Sharding key: the router cannot parse SQL (that is what the backends'
// sacrificial workers are for), so it learns the canonical pattern key
// the same way the pool's affinity does — from the X-Queryvis-Pattern
// header backends stamp on diagram responses, remembered per body hash
// in a bounded table. A body seen before routes by its pattern, so
// isomorphic queries (same pattern, different literals) land on the
// instance whose diagram cache is warm; a cold body routes by its own
// hash, which is still deterministic and evenly spread.
//
// Topology is live: the /v1/ring admin surface (see admin.go) joins,
// drains, and ejects members at runtime against an epoch-versioned
// immutable snapshot (see membership.go), hot patterns spread across
// replicas when one key's load would otherwise saturate its owner (see
// hotspot.go), and the cache-cold window after a kill or drain is
// collapsed by router-side singleflight plus a short-TTL verified-only
// response cache (see respcache.go).
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/telemetry"
)

// Metric families exported by the router; healthz reads these same
// series back, so the two endpoints can never disagree.
const (
	mRequests        = "queryvis_router_requests_total"
	mProxyDur        = "queryvis_router_request_duration_seconds"
	mFailovers       = "queryvis_router_failovers_total"
	mNoHealthy       = "queryvis_router_no_healthy_total"
	mInstReqs        = "queryvis_router_instance_requests_total"
	mInstFails       = "queryvis_router_instance_failures_total"
	mInstUp          = "queryvis_router_instance_healthy"
	mInstOpen        = "queryvis_router_breaker_open"
	mInstDraining    = "queryvis_router_instance_draining"
	mKeytab          = "queryvis_router_pattern_keys"
	mEpoch           = "queryvis_router_ring_epoch"
	mMembers         = "queryvis_router_ring_members"
	mMembership      = "queryvis_router_membership_changes_total"
	mHotPromotions   = "queryvis_router_hot_promotions_total"
	mHotDemotions    = "queryvis_router_hot_demotions_total"
	mHotGauge        = "queryvis_router_hot_patterns"
	mStampede        = "queryvis_router_stampede_total"
	mStampedeEntries = "queryvis_router_stampede_entries"
	mOrigin          = "queryvis_router_origin_responses_total"
	mTraces          = "queryvis_router_traces_total"
	mTraceRing       = "queryvis_router_trace_ring_entries"
)

// outcome labels for mRequests.
var outcomes = []string{"proxied", "shed", "error"}

// stampedeOutcomes labels mStampede: a served cache "hit", a follower
// "coalesced" onto a leader's flight, a shareable response "insert".
var stampedeOutcomes = []string{"hit", "coalesced", "insert"}

// Config tunes the router. Zero fields take the documented defaults.
type Config struct {
	// Backends are the instance base URLs (e.g. "http://127.0.0.1:8081").
	// Required, at least one. This is only the *initial* membership; the
	// /v1/ring admin surface grows and shrinks it at runtime.
	Backends []string
	// Replicas is the number of virtual ring points per instance
	// (default 64).
	Replicas int
	// HealthInterval is the active health-check period (default 250ms).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// ProbeDownAfter is how many consecutive failed probes mark a
	// healthy instance unhealthy (default 2). Hysteresis: one blown
	// probe against a busy instance must not eject it.
	ProbeDownAfter int
	// ProbeUpAfter is how many consecutive passing probes readmit an
	// unhealthy instance (default 2). A flapping instance has to prove a
	// streak before the ring trusts it with keys again.
	ProbeUpAfter int
	// BreakerThreshold opens an instance's circuit after this many
	// consecutive request-path failures (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an opened circuit keeps the instance
	// out of rotation before the timer alone re-admits it; a passing
	// health probe re-admits it sooner (default 1s).
	BreakerCooldown time.Duration
	// InstanceAttempts is the retrying client's per-instance attempt
	// budget (default 2: the backend already retried its own worker
	// once; the ring is the real retry).
	InstanceAttempts int
	// InstanceMaxElapsed caps the total time spent retrying one
	// instance before failing over (default 500ms) — time burned on a
	// sick instance is stolen from its healthy ring successor.
	InstanceMaxElapsed time.Duration
	// InstanceTimeout bounds one proxied attempt end-to-end
	// (default 30s).
	InstanceTimeout time.Duration
	// RetryAfter is the hint stamped on the router's own 503 when the
	// ring is fully unhealthy (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes caps a routed request body; bigger bodies get a 413
	// without touching a backend (default 4 MiB).
	MaxBodyBytes int64
	// AdminToken is the bearer token guarding the /v1/ring membership
	// surface. Empty disables the surface: every admin call answers 403.
	AdminToken string
	// DrainPollInterval is how often a drain waiter re-checks a draining
	// member's in-flight count (default 50ms).
	DrainPollInterval time.Duration
	// HotThresholdRPS is the per-pattern request rate above which a
	// pattern is promoted to replicated reads across its first
	// HotReplicas ring candidates. Zero disables hot-pattern
	// replication.
	HotThresholdRPS float64
	// HotReplicas is how many ring candidates share a promoted pattern
	// (default 2).
	HotReplicas int
	// HotHalfLife is the decay half-life of the per-pattern rate
	// estimator (default 1s): the promotion threshold is crossed after
	// roughly one half-life of sustained above-threshold load, and a
	// subsided spike demotes within a few half-lives.
	HotHalfLife time.Duration
	// MaxHotPatterns bounds the rate-tracker table (default 1024).
	MaxHotPatterns int
	// StampedeTTL enables failover stampede control when positive:
	// concurrent identical requests collapse into one upstream call
	// (singleflight) and shareable responses are served from a
	// router-side cache for this long. Zero disables the layer — the
	// default, because a TTL cache changes single-client visible
	// behavior (repeated requests stop reaching a backend).
	StampedeTTL time.Duration
	// StampedeMaxEntries bounds the stampede response cache
	// (default 1024).
	StampedeMaxEntries int
	// Metrics receives the router's series; nil creates a private
	// registry.
	Metrics *telemetry.Registry
	// Logger, when non-nil, receives routing events.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 250 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProbeDownAfter <= 0 {
		c.ProbeDownAfter = 2
	}
	if c.ProbeUpAfter <= 0 {
		c.ProbeUpAfter = 2
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.InstanceAttempts <= 0 {
		c.InstanceAttempts = 2
	}
	if c.InstanceMaxElapsed <= 0 {
		c.InstanceMaxElapsed = 500 * time.Millisecond
	}
	if c.InstanceTimeout <= 0 {
		c.InstanceTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.DrainPollInterval <= 0 {
		c.DrainPollInterval = 50 * time.Millisecond
	}
	if c.HotReplicas <= 0 {
		c.HotReplicas = 2
	}
	if c.HotHalfLife <= 0 {
		c.HotHalfLife = time.Second
	}
	if c.MaxHotPatterns <= 0 {
		c.MaxHotPatterns = 1024
	}
	if c.StampedeMaxEntries <= 0 {
		c.StampedeMaxEntries = 1024
	}
	return c
}

// Router is the handler. It proxies POST API calls by pattern key and
// serves its own /v1/healthz, /v1/metrics, and /v1/ring admin surface
// (the router's, not a backend's — a load balancer's health is a
// different fact from any instance's health).
type Router struct {
	cfg  Config
	keys *keytab

	// topo is the live membership snapshot; see membership.go. Writers
	// serialize on memberMu and swap whole immutable values.
	topo     atomic.Pointer[topology]
	memberMu sync.Mutex
	// seenURLs records which member URLs already own metric series, so
	// a leave/rejoin cycle reuses one series instead of panicking on
	// re-registration. Guarded by memberMu after New.
	seenURLs map[string]bool

	hot      *hottab   // nil ⇒ hot-pattern replication disabled
	stampede *stampede // nil ⇒ stampede control disabled

	hc          *client.Client  // proxy path: retries + MaxElapsed cap
	probeClient *http.Client    // health path: no retries, short timeout
	transport   *http.Transport // owned by the router; idle conns die at Close

	reg         *telemetry.Registry
	requests    map[string]*telemetry.Counter
	proxyDur    *telemetry.Histogram
	failovers   *telemetry.Counter
	noHealthy   *telemetry.Counter
	traces      *telemetry.TraceRing
	tracesTotal *telemetry.Counter

	// fleetStatus, when set, contributes the fleet supervisor's
	// reconciliation status to /v1/fleet responses.
	fleetStatus atomic.Pointer[func() any]

	closed chan struct{}
	once   sync.Once
	loops  sync.WaitGroup
}

// New builds the router and starts its health prober.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("router: Config.Backends is required")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:      cfg,
		keys:     newKeytab(),
		seenURLs: make(map[string]bool),
		closed:   make(chan struct{}),
		reg:      cfg.Metrics,
	}
	if rt.reg == nil {
		rt.reg = telemetry.NewRegistry()
	}

	members := make([]string, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		u, err := normalizeMember(b)
		if err != nil {
			return nil, err
		}
		for _, m := range members {
			if m == u {
				return nil, fmt.Errorf("router: duplicate backend %q", u)
			}
		}
		members = append(members, u)
	}

	rt.transport = &http.Transport{MaxIdleConnsPerHost: 32}
	rt.hc = client.New(client.Config{
		HTTPClient:  &http.Client{Timeout: cfg.InstanceTimeout, Transport: rt.transport},
		MaxAttempts: cfg.InstanceAttempts,
		BaseBackoff: 25 * time.Millisecond,
		MaxBackoff:  250 * time.Millisecond,
		MaxElapsed:  cfg.InstanceMaxElapsed,
	})
	rt.probeClient = &http.Client{Timeout: cfg.ProbeTimeout, Transport: rt.transport}

	rt.requests = make(map[string]*telemetry.Counter, len(outcomes))
	for _, o := range outcomes {
		rt.requests[o] = rt.reg.Counter(mRequests, "Routed requests by outcome.", "outcome", o)
	}
	rt.proxyDur = rt.reg.Histogram(mProxyDur, "Routed request latency, failovers included.",
		[]float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10})
	rt.failovers = rt.reg.Counter(mFailovers, "Requests moved to the next ring instance after a failure.")
	rt.noHealthy = rt.reg.Counter(mNoHealthy, "Requests shed because no ring instance was eligible.")
	rt.traces = telemetry.NewTraceRing(0)
	rt.tracesTotal = rt.reg.Counter(mTraces, "Router hop spans recorded to the trace ring.")
	rt.reg.GaugeFunc(mTraceRing, "Traces currently held in the router's bounded trace ring.",
		func() float64 { return float64(rt.traces.Len()) })
	rt.reg.GaugeFunc(mKeytab, "Learned body-hash→pattern routing keys.",
		func() float64 { return float64(rt.keys.len()) })
	rt.reg.GaugeFunc(mEpoch, "Ring topology epoch; bumps on every membership change.",
		func() float64 { return float64(rt.topo.Load().epoch) })
	rt.reg.GaugeFunc(mMembers, "Current ring member count.",
		func() float64 { return float64(len(rt.topo.Load().members)) })

	if cfg.HotThresholdRPS > 0 {
		rt.hot = newHottab(cfg.MaxHotPatterns, cfg.HotHalfLife, cfg.HotThresholdRPS, rt.reg)
		rt.reg.GaugeFunc(mHotGauge, "Patterns currently promoted to replicated reads.",
			func() float64 { return float64(rt.hot.promotedCount()) })
	}
	if cfg.StampedeTTL > 0 {
		rt.stampede = newStampede(cfg.StampedeTTL, cfg.StampedeMaxEntries)
		rt.reg.GaugeFunc(mStampedeEntries, "Resident stampede response-cache entries.",
			func() float64 { return float64(rt.stampede.size()) })
		for _, o := range stampedeOutcomes {
			rt.stampedeCount(o) // pre-register so healthz reads never miss
		}
	}

	insts := make([]*instance, len(members))
	for i, m := range members {
		in := &instance{url: m}
		in.healthy.Store(true) // optimistic: see instance.healthy
		insts[i] = in
		rt.registerInstanceSeries(m)
	}
	rt.topo.Store(&topology{
		epoch:   1,
		members: members,
		insts:   insts,
		ring:    newRing(members, cfg.Replicas),
	})

	rt.loops.Add(1)
	go rt.prober()
	return rt, nil
}

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *telemetry.Registry { return rt.reg }

// Close stops the health prober and drain waiters and releases idle
// connections. Safe to call more than once.
func (rt *Router) Close() {
	rt.once.Do(func() { close(rt.closed) })
	rt.loops.Wait()
	rt.transport.CloseIdleConnections()
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/healthz":
		rt.handleHealthz(w, r)
	case r.URL.Path == "/v1/metrics":
		rt.reg.WritePrometheus(w)
	case r.URL.Path == "/v1/traces":
		rt.handleTraces(w, r)
	case r.URL.Path == "/v1/fleet":
		rt.handleFleet(w, r)
	case strings.HasPrefix(r.URL.Path, "/v1/ring/"):
		rt.handleAdmin(w, r)
	default:
		rt.route(w, r)
	}
}

// carriesFaultHeaders reports whether the request injects chaos faults
// (X-Fault-Seed / X-Worker-Fault, honored by backends in test mode).
// Such requests must reach a real backend and must never be answered
// from — or inserted into — any shared cache.
func carriesFaultHeaders(r *http.Request) bool {
	return r.Header.Get("X-Fault-Seed") != "" || r.Header.Get("X-Worker-Fault") != ""
}

// route proxies one API request along its key's ring order.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	start := time.Now()

	// Open this hop's slice of the distributed trace: adopt the caller's
	// trace context or start a fresh trace, then stamp the router's span
	// as the parent on the forwarded headers (forward copies r.Header).
	// The span itself is recorded into the router's ring by the deferred
	// finish, annotated with where the request actually went — the
	// read-time /v1/traces merge joins it with the instance's subtree.
	rid := r.Header.Get("X-Request-Id")
	if rid == "" {
		rid = telemetry.NewRequestID()
		r.Header.Set("X-Request-Id", rid)
	}
	traceID, parentSpan, sampled := "", "", true
	if tc, ok := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeader)); ok {
		traceID, parentSpan, sampled = tc.TraceID, tc.SpanID, tc.Sampled
	} else {
		traceID = telemetry.NewTraceID()
	}
	spanID := telemetry.NewSpanID()
	r.Header.Set(telemetry.TraceHeader,
		telemetry.TraceContext{TraceID: traceID, SpanID: spanID, Sampled: sampled}.Header())
	w.Header().Set(telemetry.TraceIDHeader, traceID)
	var traceOutcome, traceInstance, traceVia, traceKey string
	defer func() {
		if !sampled {
			return
		}
		sp := telemetry.Span{
			Name: "router", ID: spanID, Parent: parentSpan,
			Start: start, Duration: time.Since(start), Done: true,
			Attrs: []telemetry.Attr{{Key: "outcome", Value: traceOutcome}},
		}
		if traceInstance != "" {
			sp.Attrs = append(sp.Attrs, telemetry.Attr{Key: "instance", Value: traceInstance})
		}
		if traceVia != "" {
			sp.Attrs = append(sp.Attrs, telemetry.Attr{Key: "shared", Value: traceVia})
		}
		rt.traces.Put(telemetry.TraceRecord{
			TraceID: traceID, RequestID: rid, Pattern: traceKey,
			Start: start, Duration: sp.Duration, Spans: []telemetry.Span{sp},
		})
		rt.tracesTotal.Inc()
	}()
	traceOutcome = "error"

	// Deadline propagation: a caller-advertised remaining budget bounds
	// this whole routing attempt — failovers included — and forward
	// re-stamps each outgoing hop with what's left, so an instance never
	// burns its full local deadline on a request the caller has already
	// written off.
	hasBudget := false
	if budget, ok := telemetry.ParseDeadlineMS(r.Header.Get(telemetry.DeadlineHeader)); ok {
		hasBudget = true
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		r = r.WithContext(ctx)
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBodyBytes+1))
	if err != nil {
		rt.fail(w, r, http.StatusBadRequest, "bad_request", "reading request body failed")
		return
	}
	if int64(len(body)) > rt.cfg.MaxBodyBytes {
		rt.fail(w, r, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("request body exceeds the router's %d-byte cap", rt.cfg.MaxBodyBytes))
		return
	}

	// The routing key — and the hot tracker's demand signal — are
	// computed before the stampede gate: a request served from the
	// router's own cache is still client demand for its pattern, and
	// promotion must track what clients ask for, not the residual that
	// happens to reach a backend.
	bodyHash := hash64(body)
	key := rt.keys.get(bodyHash)
	if key == "" {
		key = strconv.FormatUint(bodyHash, 16)
	}
	traceKey = key
	promoted, rot := false, uint32(0)
	if rt.hot != nil {
		promoted, rot = rt.hot.touch(key, time.Now())
	}

	// Stampede control (opt-in): collapse the N identical requests of a
	// cache-cold failover window into one upstream call. The leader
	// registers a flight here and resolves it at every exit below via
	// the deferred complete; followers wait and replay a shareable
	// result, or make their own trip when the leader's wasn't.
	var (
		flight    *stampedeFlight
		skey      string
		delivered *sharedResp
	)
	if rt.stampede != nil && !carriesFaultHeaders(r) && len(body)+len(r.URL.Path) < stampedeMaxKeyBytes {
		skey = r.Method + " " + r.URL.Path + "\x00" + string(body)
		if sr := rt.stampede.get(skey, time.Now()); sr != nil {
			rt.stampedeCount("hit").Inc()
			rt.requests["proxied"].Inc()
			rt.proxyDur.Observe(time.Since(start).Seconds())
			traceOutcome, traceVia = "proxied", "hit"
			writeShared(w, sr, "hit")
			return
		}
		fl, leader := rt.stampede.join(skey)
		if leader {
			flight = fl
			defer func() {
				if rt.stampede.complete(skey, flight, delivered, time.Now()) {
					rt.stampedeCount("insert").Inc()
				}
			}()
		} else {
			select {
			case <-fl.done:
				if fl.sr != nil {
					rt.stampedeCount("coalesced").Inc()
					rt.requests["proxied"].Inc()
					rt.proxyDur.Observe(time.Since(start).Seconds())
					traceOutcome, traceVia = "proxied", "coalesced"
					writeShared(w, fl.sr, "coalesced")
					return
				}
				// The leader's outcome wasn't shareable (an error or a
				// degraded artifact): fall through to our own upstream
				// call — failures are never amplified by replay.
			case <-r.Context().Done():
				rt.requests["error"].Inc()
				rt.fail(w, r, http.StatusServiceUnavailable, "canceled",
					"request canceled while waiting on a coalesced upstream call")
				return
			}
		}
	}

	// One topology snapshot per request: the candidate list, the
	// instance pointers, and the ring agree with each other even if a
	// membership change lands mid-request.
	tp := rt.topo.Load()
	order := tp.ring.order(key)

	// The failover schedule: the key's eligible instances in ring order.
	// When the breaker, prober, and drain flags have disqualified
	// everyone, that is the fully-unhealthy case — shed honestly rather
	// than queue blind.
	now := time.Now()
	candidates := make([]*instance, 0, len(order))
	for _, idx := range order {
		if tp.insts[idx].eligible(now) {
			candidates = append(candidates, tp.insts[idx])
		}
	}
	if len(candidates) == 0 {
		rt.noHealthy.Inc()
		rt.requests["shed"].Inc()
		traceOutcome = "shed"
		rt.shed(w, r)
		return
	}

	// Hot-pattern replication: a promoted key rotates across its first
	// HotReplicas candidates instead of hammering the owner alone. The
	// rotation only reorders — the full candidate list is still the
	// failover schedule, so replication never costs availability.
	if promoted && len(candidates) > 1 {
		n := min(rt.cfg.HotReplicas, len(candidates))
		if i := int(rot % uint32(n)); i != 0 {
			c := append(make([]*instance, 0, len(candidates)), candidates...)
			c[0], c[i] = c[i], c[0]
			candidates = c
		}
	}

	var lastErr error
	var lastShed *sharedResp
	for i, in := range candidates {
		last := i == len(candidates)-1
		if r.Context().Err() != nil {
			// The caller's budget (or connection) died mid-schedule:
			// further attempts serve nobody.
			break
		}
		rt.reg.Counter(mInstReqs, "Proxied attempts per instance.", "instance", in.url).Inc()
		sr, err := rt.forward(r, in, body)
		if err != nil {
			lastErr = err
			rt.reg.Counter(mInstFails, "Failed attempts per instance.", "instance", in.url).Inc()
			in.recordFailure(rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
			rt.log("instance attempt failed", "instance", in.url, "err", err, "failover", !last)
			if !last {
				rt.failovers.Inc()
			}
			continue
		}
		if retryElsewhere(sr.status) && !last {
			// The instance shed or is failing; its ring successor gets the
			// request. Only transport errors and 5xx count against the
			// breaker — a 429 is the load shedder doing its job, not a
			// fault.
			if sr.status == http.StatusTooManyRequests {
				// Keep the instance's own shed response: if every remaining
				// candidate fails at the transport level, this — with its
				// better-informed Retry-After — is what the client gets,
				// not a router-minted 503 that masks the backpressure.
				lastShed = sr
			} else {
				rt.reg.Counter(mInstFails, "Failed attempts per instance.", "instance", in.url).Inc()
				in.recordFailure(rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
			}
			rt.failovers.Inc()
			rt.log("instance shed, failing over", "instance", in.url, "status", sr.status)
			continue
		}
		// A response to deliver — a success, a categorized client error,
		// or (on the last candidate) the backend's own shed response,
		// passed through verbatim: it is well-formed and honest, and the
		// backend's Retry-After is better informed than ours.
		if sr.status < http.StatusInternalServerError && sr.status != http.StatusTooManyRequests {
			in.recordSuccess()
		}
		if pat := sr.header.Get("X-Queryvis-Pattern"); pat != "" {
			rt.keys.put(bodyHash, pat)
		}
		rt.requests["proxied"].Inc()
		rt.proxyDur.Observe(time.Since(start).Seconds())
		traceOutcome, traceInstance = "proxied", in.url
		delivered = sr // deferred stampede complete decides shareability
		writeShared(w, sr, "")
		return
	}
	// A caller budget that ran out is a timeout, categorized as one —
	// the caller gave us N ms and we spent them; a 503 here would invite
	// an immediate (pointless) retry.
	if hasBudget && r.Context().Err() == context.DeadlineExceeded {
		rt.requests["error"].Inc()
		rt.proxyDur.Observe(time.Since(start).Seconds())
		rt.log("caller deadline budget exhausted", "err", lastErr)
		traceOutcome = "timeout"
		rt.fail(w, r, http.StatusGatewayTimeout, "timeout",
			"caller deadline budget exhausted before any instance answered")
		return
	}
	// Every remaining candidate failed at the transport level. If some
	// instance shed with a 429 along the way, that response — Retry-After
	// intact — is the honest answer: the fleet is saturated, and masking
	// its backpressure behind a router-minted 503 misprices the retry.
	if lastShed != nil {
		rt.requests["proxied"].Inc()
		rt.proxyDur.Observe(time.Since(start).Seconds())
		rt.log("all failover candidates failed; passing through instance shed response")
		traceOutcome = "proxied"
		delivered = lastShed
		writeShared(w, lastShed, "")
		return
	}
	// Nothing well-formed to pass through, so answer with the router's
	// own typed 503.
	rt.requests["error"].Inc()
	rt.proxyDur.Observe(time.Since(start).Seconds())
	rt.log("all candidates failed", "err", lastErr)
	traceOutcome = "shed"
	rt.shed(w, r)
}

// maxBufferedResponse caps a buffered upstream response. Diagram
// payloads are a few KiB; anything past this cap is a wire-contract
// violation by the backend and is treated as an instance failure.
const maxBufferedResponse = 64 << 20

// forward sends the request to one instance through the shared retrying
// client (which retries 429/503 briefly and honors Retry-After, capped
// by InstanceMaxElapsed so a sick instance cannot monopolize the
// failover budget) and buffers the full response. Buffering is what
// makes failover and stampede sharing honest: a connection that dies
// mid-body is discovered here — and failed over — instead of after the
// response status has already been committed to the client. The
// instance's in-flight count covers the whole exchange; the drain
// waiter trusts it.
func (rt *Router) forward(r *http.Request, in *instance, body []byte) (*sharedResp, error) {
	in.inflight.Add(1)
	defer in.inflight.Add(-1)
	req, err := http.NewRequestWithContext(r.Context(), r.Method, in.url+r.URL.Path, readerFor(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range r.Header {
		if isHopByHop(k) {
			continue
		}
		req.Header[k] = vs
	}
	// Re-stamp the caller's deadline budget with what this hop has left:
	// the instance should see the remaining time, not the original grant
	// — failovers have already spent part of it.
	if _, ok := telemetry.ParseDeadlineMS(r.Header.Get(telemetry.DeadlineHeader)); ok {
		if dl, hasDL := r.Context().Deadline(); hasDL {
			req.Header.Set(telemetry.DeadlineHeader, telemetry.FormatDeadlineMS(time.Until(dl)))
		}
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, maxBufferedResponse+1))
	if err != nil {
		return nil, err
	}
	if len(rb) > maxBufferedResponse {
		return nil, fmt.Errorf("router: response from %s exceeds the %d-byte buffer cap",
			in.url, maxBufferedResponse)
	}
	return &sharedResp{status: resp.StatusCode, header: resp.Header.Clone(), body: rb}, nil
}

// writeShared delivers a buffered response. via tags replayed
// responses ("hit", "coalesced") with X-Queryvis-Router-Cache so a
// client can tell router-served from instance-served answers; a live
// proxied response passes empty via and gets no marker.
func writeShared(w http.ResponseWriter, sr *sharedResp, via string) {
	h := w.Header()
	for k, vs := range sr.header {
		if isHopByHop(k) {
			continue
		}
		h[k] = append([]string(nil), vs...)
	}
	if via != "" {
		h.Set("X-Queryvis-Router-Cache", via)
	}
	w.WriteHeader(sr.status)
	_, _ = w.Write(sr.body)
}

// retryElsewhere reports whether a response status means the next ring
// instance should get the request instead: the instance is shedding
// (429), draining or crashed (503), or behind a broken gateway (502).
func retryElsewhere(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// shed writes the router's own honest 503: a categorized error body in
// the service's wire shape plus Retry-After, so a well-behaved client
// (internal/client) backs off and retries instead of seeing a blank
// failure.
func (rt *Router) shed(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After",
		strconv.Itoa(int(math.Ceil(rt.cfg.RetryAfter.Seconds()))))
	rt.fail(w, r, http.StatusServiceUnavailable, "overloaded",
		"no healthy instance in the ring; retry shortly")
}

// requestID echoes the caller's X-Request-Id or mints one, so every
// router-originated response is traceable even when the client sent
// nothing to correlate by.
func (rt *Router) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		return id
	}
	return telemetry.NewRequestID()
}

// fail writes a categorized error in the same wire shape the backends
// use, so router-origin and instance-origin failures are structurally
// indistinguishable to clients — except for the X-Request-Id the
// router stamps (and echoes) on its own responses, which is exactly
// what lets an operator attribute a 503 to the router rather than an
// instance. Every router-originated response is counted by category.
func (rt *Router) fail(w http.ResponseWriter, r *http.Request, status int, category, msg string) {
	id := rt.requestID(r)
	rt.reg.Counter(mOrigin, "Router-originated responses by category.", "category", category).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", id)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]any{"category": category, "message": msg, "request_id": id},
	})
}

// stampedeCount returns the outcome-labeled stampede counter.
func (rt *Router) stampedeCount(outcome string) *telemetry.Counter {
	return rt.reg.Counter(mStampede, "Stampede-control events by outcome.", "outcome", outcome)
}

func isHopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Proxy-Connection", "Te", "Trailer",
		"Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

// drain discards a response that will not be delivered so the transport
// can reuse the connection.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	_ = resp.Body.Close()
}

// readerFor wraps a body for http.NewRequest — a *bytes.Reader, so the
// request gets a GetBody rewinder and the shared client may retry it;
// nil for empty keeps bodyless semantics for GETs.
func readerFor(body []byte) io.Reader {
	if len(body) == 0 {
		return nil
	}
	return bytes.NewReader(body)
}

func (rt *Router) log(msg string, args ...any) {
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Info(msg, args...)
	}
}
