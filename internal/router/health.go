package router

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// instance is one routed-to backend plus its health bookkeeping. Two
// independent signals gate traffic: the active prober's verdict
// (healthy) and the request-path circuit breaker (openUntil). Either
// alone can take the instance out of rotation; both must agree it is
// fine before the ring hands it a key again.
type instance struct {
	url string

	// healthy is the prober's last verdict against /v1/healthz.
	// Instances start optimistic — a router booting ahead of its
	// backends must not shed its first requests; a dead backend costs
	// one failover, not an outage.
	healthy atomic.Bool
	// consecFails counts request-path failures (transport errors,
	// 502/503) since the last success; reaching the breaker threshold
	// opens the breaker for the cooldown.
	consecFails atomic.Int64
	// openUntil is the breaker deadline in unix nanos; 0 means closed.
	openUntil atomic.Int64
}

// eligible reports whether the ring may hand this instance a request.
func (in *instance) eligible(now time.Time) bool {
	return in.healthy.Load() && now.UnixNano() >= in.openUntil.Load()
}

func (in *instance) breakerOpen(now time.Time) bool {
	return now.UnixNano() < in.openUntil.Load()
}

// recordSuccess closes the breaker — any proxied success proves the
// instance serves again.
func (in *instance) recordSuccess() {
	in.consecFails.Store(0)
	in.openUntil.Store(0)
}

// recordFailure counts one request-path failure and opens the breaker
// once the run reaches threshold.
func (in *instance) recordFailure(threshold int, cooldown time.Duration) {
	if in.consecFails.Add(1) >= int64(threshold) {
		in.openUntil.Store(time.Now().Add(cooldown).UnixNano())
	}
}

// probe runs one active health check: a GET against /v1/healthz with a
// hard timeout. Any 200 is healthy; anything else — including a healthz
// that answers 503 because the backend is draining — is not.
func (rt *Router) probe(in *instance) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, in.url+"/v1/healthz", nil)
	if err != nil {
		in.healthy.Store(false)
		return
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		in.healthy.Store(false)
		return
	}
	drain(resp)
	ok := resp.StatusCode == http.StatusOK
	was := in.healthy.Swap(ok)
	if ok && !was {
		// Recovery observed by the prober also closes the breaker: the
		// cooldown exists to stop hammering a struggling instance, and a
		// passing health check is better evidence than an expired timer.
		in.recordSuccess()
		rt.log("instance recovered", "instance", in.url)
	}
	if !ok && was {
		rt.log("instance unhealthy", "instance", in.url)
	}
}

// prober polls every instance on the configured interval until Close.
func (rt *Router) prober() {
	defer rt.loops.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		for _, in := range rt.insts {
			rt.probe(in)
		}
		select {
		case <-rt.closed:
			return
		case <-t.C:
		}
	}
}
