package router

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// instance is one routed-to backend plus its health bookkeeping. Three
// independent signals gate traffic: the active prober's verdict
// (healthy), the request-path circuit breaker (openUntil), and the
// operator's drain flag. Any of them alone can take the instance out of
// rotation; all must agree it is fine before the ring hands it a key
// again.
type instance struct {
	url string

	// healthy is the prober's hysteresis-filtered verdict against
	// /v1/healthz. Instances start optimistic — a router booting ahead
	// of its backends must not shed its first requests; a dead backend
	// costs one failover, not an outage.
	healthy atomic.Bool
	// probeFails / probeOKs are the prober's consecutive-verdict
	// streaks. A single blown probe must not eject an instance that is
	// merely busy, and a single lucky probe must not readmit one that is
	// flapping — the verdict flips only after ProbeDownAfter consecutive
	// failures or ProbeUpAfter consecutive passes. Only the prober
	// goroutine writes these; atomics keep healthz reads clean.
	probeFails atomic.Int32
	probeOKs   atomic.Int32
	// draining marks an instance the admin surface is retiring: it
	// receives no new assignments, finishes what it has, and is removed
	// from the ring once its in-flight count reaches zero.
	draining atomic.Bool
	// inflight counts requests currently proxied to this instance; the
	// drain waiter removes the member only once this holds at zero.
	inflight atomic.Int64
	// consecFails counts request-path failures (transport errors,
	// 502/503) since the last success; reaching the breaker threshold
	// opens the breaker for the cooldown.
	consecFails atomic.Int64
	// openUntil is the breaker deadline in unix nanos; 0 means closed.
	openUntil atomic.Int64
}

// eligible reports whether the ring may hand this instance a request.
func (in *instance) eligible(now time.Time) bool {
	return in.healthy.Load() && !in.draining.Load() && now.UnixNano() >= in.openUntil.Load()
}

func (in *instance) breakerOpen(now time.Time) bool {
	return now.UnixNano() < in.openUntil.Load()
}

// recordSuccess closes the breaker — any proxied success proves the
// instance serves again.
func (in *instance) recordSuccess() {
	in.consecFails.Store(0)
	in.openUntil.Store(0)
}

// recordFailure counts one request-path failure and opens the breaker
// once the run reaches threshold.
func (in *instance) recordFailure(threshold int, cooldown time.Duration) {
	if in.consecFails.Add(1) >= int64(threshold) {
		in.openUntil.Store(time.Now().Add(cooldown).UnixNano())
	}
}

// probe runs one active health check: a GET against /v1/healthz with a
// hard timeout. Any 200 is a pass; anything else — including a healthz
// that answers 503 because the backend is draining — is a fail. The
// pass/fail stream feeds the hysteresis counters; the healthy verdict
// flips only on a full streak, so a flapping instance cannot thrash
// the ring's eligibility set probe by probe.
func (rt *Router) probe(in *instance) {
	ok := false
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, in.url+"/v1/healthz", nil)
	if err == nil {
		if resp, perr := rt.probeClient.Do(req); perr == nil {
			drain(resp)
			ok = resp.StatusCode == http.StatusOK
		}
	}
	if ok {
		in.probeFails.Store(0)
		if in.healthy.Load() {
			in.probeOKs.Store(0)
			return
		}
		if in.probeOKs.Add(1) < int32(rt.cfg.ProbeUpAfter) {
			return
		}
		in.probeOKs.Store(0)
		in.healthy.Store(true)
		// Recovery observed by the prober also closes the breaker: the
		// cooldown exists to stop hammering a struggling instance, and a
		// passing health-check streak is better evidence than an expired
		// timer.
		in.recordSuccess()
		rt.log("instance recovered", "instance", in.url)
		return
	}
	in.probeOKs.Store(0)
	if !in.healthy.Load() {
		in.probeFails.Store(0)
		return
	}
	if in.probeFails.Add(1) < int32(rt.cfg.ProbeDownAfter) {
		return
	}
	in.probeFails.Store(0)
	in.healthy.Store(false)
	rt.log("instance unhealthy", "instance", in.url)
}

// prober polls every current ring member on the configured interval
// until Close. Membership is read fresh each round, so joined
// instances are probed from their next cycle and ejected ones are
// forgotten.
func (rt *Router) prober() {
	defer rt.loops.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		for _, in := range rt.topo.Load().insts {
			rt.probe(in)
		}
		select {
		case <-rt.closed:
			return
		case <-t.C:
		}
	}
}
