// Black-box router behavior against controllable httptest backends:
// sticky sharding, pattern-affinity learning, failover, circuit
// breaking, and the honest fully-unhealthy 503.
package router_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leak"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// fakeRing builds n httptest backends whose handler is hf(i), plus a
// router over them; both are torn down with the test.
func fakeRing(t *testing.T, n int, hf func(i int) http.HandlerFunc, tune func(*router.Config)) (*router.Router, *httptest.Server, []*httptest.Server) {
	t.Helper()
	backends := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		backends[i] = httptest.NewServer(hf(i))
		t.Cleanup(backends[i].Close)
		urls[i] = backends[i].URL
	}
	cfg := router.Config{
		Backends:           urls,
		HealthInterval:     25 * time.Millisecond,
		BreakerThreshold:   3,
		BreakerCooldown:    200 * time.Millisecond,
		InstanceAttempts:   1,
		InstanceMaxElapsed: 100 * time.Millisecond,
		RetryAfter:         time.Second,
		Metrics:            telemetry.NewRegistry(),
	}
	if tune != nil {
		tune(&cfg)
	}
	rt, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	return rt, front, backends
}

// okBackend answers every POST with a 200 JSON body naming itself and a
// healthz with 200.
func okBackend(hits *[8]atomic.Int64) func(i int) http.HandlerFunc {
	return func(i int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			hits[i].Add(1)
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"diagram": "digraph {}", "instance": i})
		}
	}
}

// TestStickySharding: one body always lands on one backend; distinct
// bodies use more than one backend.
func TestStickySharding(t *testing.T) {
	t.Cleanup(leak.Check(t))
	var hits [8]atomic.Int64
	_, front, _ := fakeRing(t, 3, okBackend(&hits), nil)

	for i := 0; i < 10; i++ {
		if st, _, _ := postJSON(t, front.URL+"/v1/diagram", diagramReq(qSome)); st != 200 {
			t.Fatalf("request %d: status %d", i, st)
		}
	}
	owners := 0
	for i := range hits {
		if n := hits[i].Load(); n > 0 {
			owners++
			if n != 10 {
				t.Fatalf("backend %d saw %d of 10 identical requests", i, n)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("identical body spread across %d backends, want 1", owners)
	}

	for i := range hits {
		hits[i].Store(0)
	}
	for i := 0; i < 40; i++ {
		sql := strings.Replace(qSome, "F.person", "F.person /*"+strings.Repeat("x", i)+"*/", 1)
		if st, _, _ := postJSON(t, front.URL+"/v1/diagram", diagramReq(sql)); st != 200 {
			t.Fatalf("distinct request %d: status %d", i, st)
		}
	}
	owners = 0
	for i := range hits {
		if hits[i].Load() > 0 {
			owners++
		}
	}
	if owners < 2 {
		t.Fatalf("40 distinct bodies all hit %d backend(s); hashing is not spreading", owners)
	}
}

// TestPatternAffinityLearning: once backends stamp X-Queryvis-Pattern,
// bodies with the same pattern converge onto the same instance even
// though their body hashes differ.
func TestPatternAffinityLearning(t *testing.T) {
	t.Cleanup(leak.Check(t))
	var hits [8]atomic.Int64
	hf := func(i int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			hits[i].Add(1)
			w.Header().Set("X-Queryvis-Pattern", "shared-pattern-key")
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"diagram": "digraph {}"})
		}
	}
	rt, front, _ := fakeRing(t, 4, hf, nil)

	// Teach the router both bodies' pattern, then route each again: the
	// replays must land on one shared instance (the pattern's owner).
	bodyA, bodyB := diagramReq(qSome), diagramReq(qSome+" -- isomorph")
	postJSON(t, front.URL+"/v1/diagram", bodyA)
	postJSON(t, front.URL+"/v1/diagram", bodyB)
	for i := range hits {
		hits[i].Store(0)
	}
	for i := 0; i < 5; i++ {
		postJSON(t, front.URL+"/v1/diagram", bodyA)
		postJSON(t, front.URL+"/v1/diagram", bodyB)
	}
	owners := 0
	for i := range hits {
		if n := hits[i].Load(); n > 0 {
			owners++
			if n != 10 {
				t.Fatalf("pattern owner %d saw %d of 10 requests", i, n)
			}
		}
	}
	if owners != 1 {
		t.Fatalf("learned pattern routed to %d instances, want 1", owners)
	}
	if st := rt.State(); st.PatternKeys < 2 {
		t.Fatalf("keytab learned %d keys, want >= 2", st.PatternKeys)
	}
}

// TestFailoverOnSheddingInstance: an instance answering 503 loses the
// request to its ring successor; the client sees only 200s.
func TestFailoverOnSheddingInstance(t *testing.T) {
	t.Cleanup(leak.Check(t))
	const sick = 0
	var hits [8]atomic.Int64
	hf := func(i int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				w.WriteHeader(http.StatusOK) // healthz lies; the breaker learns anyway
				return
			}
			if i == sick {
				w.Header().Set("Retry-After", "0")
				http.Error(w, `{"error":{"category":"overloaded","message":"shedding"}}`,
					http.StatusServiceUnavailable)
				return
			}
			hits[i].Add(1)
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"diagram": "digraph {}"})
		}
	}
	rt, front, _ := fakeRing(t, 2, hf, nil)

	for i := 0; i < 20; i++ {
		sql := qSome + strings.Repeat(" ", i+1) // distinct keys: some own the sick instance
		if st, _, raw := postJSON(t, front.URL+"/v1/diagram", diagramReq(sql)); st != 200 {
			t.Fatalf("request %d: status %d body %.120s", i, st, raw)
		}
	}
	st := rt.State()
	if st.Failovers == 0 {
		t.Fatalf("no failover recorded despite a shedding instance: %+v", st)
	}
	if rt.Registry().Value("queryvis_router_failovers_total") != float64(st.Failovers) {
		t.Fatal("healthz and registry disagree on failovers")
	}
}

// TestBreakerOpensAndRecovers: repeated request-path failures open the
// instance's circuit (visible in healthz); after the backend heals and
// the cooldown passes, traffic returns.
func TestBreakerOpensAndRecovers(t *testing.T) {
	t.Cleanup(leak.Check(t))
	var sick atomic.Bool
	sick.Store(true)
	hf := func(i int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				w.WriteHeader(http.StatusOK)
				return
			}
			if i == 0 && sick.Load() {
				http.Error(w, `{"error":{"category":"overloaded","message":"x"}}`,
					http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"diagram": "digraph {}"})
		}
	}
	rt, front, _ := fakeRing(t, 2, hf, func(c *router.Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = 150 * time.Millisecond
	})

	// Hammer with distinct keys — some must be owned by the sick
	// instance — until its breaker opens.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		postJSON(t, front.URL+"/v1/diagram", diagramReq(qSome+strings.Repeat(" ", i%64)))
		opened := false
		for _, in := range rt.State().Instances {
			if in.BreakerOpen {
				opened = true
			}
		}
		if opened {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened: %+v", rt.State())
		}
	}
	if s := rt.State().Status; s != "degraded" {
		t.Fatalf("status %q with one breaker open, want degraded", s)
	}

	// Heal the backend; the breaker cooldown expires and traffic flows.
	sick.Store(false)
	time.Sleep(200 * time.Millisecond)
	if st, _, raw := postJSON(t, front.URL+"/v1/diagram", diagramReq(qSome)); st != 200 {
		t.Fatalf("after recovery: status %d body %.120s", st, raw)
	}
	waitUntil(t, 5*time.Second, func() bool { return rt.State().Status == "ok" })
}

// TestHonest503WhenRingFullyUnhealthy: with every instance down, the
// router answers its own categorized 503 with Retry-After — and its
// healthz goes unhealthy/503 — rather than hanging or dropping.
func TestHonest503WhenRingFullyUnhealthy(t *testing.T) {
	t.Cleanup(leak.Check(t))
	var hits [8]atomic.Int64
	rt, front, backends := fakeRing(t, 2, okBackend(&hits), nil)
	for _, b := range backends {
		b.Close() // the whole ring goes away
	}
	// Wait for the prober to notice both instances are gone.
	waitUntil(t, 5*time.Second, func() bool { return rt.State().Status == "unhealthy" })

	st, hdr, raw := postJSON(t, front.URL+"/v1/diagram", diagramReq(qSome))
	if st != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", st)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After — clients cannot back off honestly")
	}
	var eb struct {
		Error struct {
			Category string `json:"category"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Category != "overloaded" {
		t.Fatalf("malformed shed body %.200s (err %v)", raw, err)
	}

	hst, _, hraw := getJSON(t, front.URL+"/v1/healthz")
	if hst != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d for a dead ring, want 503", hst)
	}
	var hz router.State
	if err := json.Unmarshal(hraw, &hz); err != nil || hz.Status != "unhealthy" {
		t.Fatalf("healthz %.200s (err %v)", hraw, err)
	}
	for _, in := range hz.Instances {
		if in.Healthy {
			t.Fatalf("healthz claims %s healthy after its death", in.URL)
		}
	}
	if rt.Registry().Value("queryvis_router_no_healthy_total") == 0 {
		t.Fatal("shed request not counted in the registry")
	}
}

// TestRouterRejectsOversizedBody: the router's own body cap answers 413
// without consuming a backend.
func TestRouterRejectsOversizedBody(t *testing.T) {
	t.Cleanup(leak.Check(t))
	var hits [8]atomic.Int64
	_, front, _ := fakeRing(t, 1, okBackend(&hits), func(c *router.Config) {
		c.MaxBodyBytes = 128
	})
	st, _, raw := postJSON(t, front.URL+"/v1/diagram", diagramReq(qSome+strings.Repeat(" ", 4096)))
	if st != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d body %.120s, want 413", st, raw)
	}
	var eb struct {
		Error struct {
			Category string `json:"category"`
		} `json:"error"`
	}
	if err := json.Unmarshal(raw, &eb); err != nil || eb.Error.Category != "too_large" {
		t.Fatalf("malformed 413 body %.200s", raw)
	}
	if hits[0].Load() != 0 {
		t.Fatal("oversized body reached a backend")
	}
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}
