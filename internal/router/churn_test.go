// Membership-churn chaos: a rolling restart of real instance
// processes under open-loop, Zipf-skewed load, driven entirely through
// the /v1/ring admin surface. Two instances are replaced mid-storm —
// join the replacement, drain the old member, wait for the drain
// waiter to remove it, then SIGKILL the process — while 16 workers
// hammer the router with a hot-pattern-heavy query mix and the full
// fabric (hot replication + stampede control) is enabled. The contract:
// every response is well-formed, nothing is shed or 503'd (at least
// one instance was healthy at every instant), the epoch ledger shows
// every membership change, and the router leaks neither goroutines nor
// child processes.
package router_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leak"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// churnAdmin issues one admin call against the live router; safe from
// the chaos goroutine (no t.Fatal).
func churnAdmin(front, method, path, token, url string) (int, error) {
	raw, _ := json.Marshal(map[string]string{"url": url})
	req, err := http.NewRequest(method, front+path, bytes.NewReader(raw))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

func TestRouterMembershipChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real instance processes")
	}
	t.Cleanup(leak.Check(t))
	t.Cleanup(leak.CheckChildren(t))

	const token = "churn-secret"
	a, b, c := startInstance(t), startInstance(t), startInstance(t)

	rt, err := router.New(router.Config{
		Backends:          []string{a.URL, b.URL, c.URL},
		HealthInterval:    50 * time.Millisecond,
		BreakerThreshold:  2,
		BreakerCooldown:   250 * time.Millisecond,
		InstanceAttempts:  2,
		DrainPollInterval: 20 * time.Millisecond,
		AdminToken:        token,
		HotThresholdRPS:   5,
		HotHalfLife:       time.Second,
		StampedeTTL:       300 * time.Millisecond,
		Metrics:           telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	// Zipf-skewed mix (seeded): rank 0 dominates, exercising the hot
	// path; each rank cycles through a few literal variants so the hot
	// pattern arrives as distinct bodies that converge onto one learned
	// pattern key rather than one byte-identical body.
	const ranks, variants = 12, 6
	zipf := rand.NewZipf(rand.New(rand.NewSource(42)), 1.4, 1, ranks-1)
	sqlFor := func(rank, variant int) string {
		return fmt.Sprintf("%s -- rank %d variant %d", qSome, rank, variant)
	}

	const (
		total       = 480
		concurrency = 16
		mJoinD      = 120
		mDrainA     = 200
		mJoinE      = 280
		mDrainB     = 360
	)
	var (
		started atomic.Int64
		byCode  [600]atomic.Int64
		mu      sync.Mutex
		bad     []string
	)
	malformed := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(bad) < 10 {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
	}

	waitStarted := func(n int64) {
		for started.Load() < n {
			time.Sleep(time.Millisecond)
		}
	}
	// replace drains old, waits for the drain waiter to remove it from
	// the membership, then kills the process — the rolling-restart move.
	replace := func(old *testInstance, label string) {
		if st, err := churnAdmin(front.URL, http.MethodPost, "/v1/ring/drain", token, old.URL); err != nil || st != http.StatusAccepted {
			t.Errorf("drain %s: status %d err %v", label, st, err)
			return
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			gone := true
			for _, in := range rt.State().Instances {
				if in.URL == old.URL {
					gone = false
				}
			}
			if gone {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("drain of %s never completed: %+v", label, rt.State())
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		old.Kill()
		t.Logf("replaced instance %s (drained, removed, killed)", label)
	}

	churned := make(chan struct{})
	go func() {
		defer close(churned)
		waitStarted(mJoinD)
		d := startInstance(t)
		if st, err := churnAdmin(front.URL, http.MethodPost, "/v1/ring/instances", token, d.URL); err != nil || st != http.StatusOK {
			t.Errorf("join d: status %d err %v", st, err)
		}
		waitStarted(mDrainA)
		replace(a, "a")
		waitStarted(mJoinE)
		e := startInstance(t)
		if st, err := churnAdmin(front.URL, http.MethodPost, "/v1/ring/instances", token, e.URL); err != nil || st != http.StatusOK {
			t.Errorf("join e: status %d err %v", st, err)
		}
		waitStarted(mDrainB)
		replace(b, "b")
	}()

	// The load: open-loop-ish worker pool, plain one-shot requests — no
	// client retries, so any router miss is visible in the accounting.
	type job struct{ rank, variant int }
	var wg sync.WaitGroup
	work := make(chan job)
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				st, hdr, raw := postJSON(t, front.URL+"/v1/diagram",
					diagramReq(sqlFor(j.rank, j.variant)))
				byCode[st].Add(1)
				switch {
				case st == http.StatusOK:
					var body struct {
						Diagram string `json:"diagram"`
					}
					if json.Unmarshal(raw, &body) != nil || body.Diagram == "" {
						malformed("rank %d: 200 with bad body %.120s", j.rank, raw)
					}
					// Every successful response is traced, even mid-churn.
					if hdr.Get(telemetry.TraceIDHeader) == "" {
						malformed("rank %d: 200 without a %s header", j.rank, telemetry.TraceIDHeader)
					}
				default:
					var eb struct {
						Error struct {
							Category string `json:"category"`
						} `json:"error"`
					}
					if json.Unmarshal(raw, &eb) != nil || eb.Error.Category == "" {
						malformed("rank %d: status %d with non-error body %.120s", j.rank, st, raw)
					}
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		started.Add(1)
		work <- job{rank: int(zipf.Uint64()), variant: i % variants}
	}
	close(work)
	wg.Wait()
	<-churned

	var sum, oks int64
	counts := map[int]int64{}
	for code := range byCode {
		if n := byCode[code].Load(); n > 0 {
			counts[code] = n
			sum += n
			if code == http.StatusOK {
				oks = n
			}
		}
	}
	st := rt.State()
	t.Logf("outcomes by status: %v", counts)
	t.Logf("final state: epoch=%d members=%d shed=%d failovers=%d hot=%d stampede=%+v",
		st.Epoch, len(st.Instances), st.Shed, st.Failovers, st.HotPatterns, st.Stampede)

	for _, m := range bad {
		t.Error(m)
	}
	if sum != total {
		t.Fatalf("accounted for %d of %d requests", sum, total)
	}
	// At least one instance was healthy at every instant of the rolling
	// restart: nothing may be shed, nothing may 503, and with drains
	// (not kills) removing live members, nothing should fail at all.
	if oks != total {
		t.Fatalf("%d/%d requests succeeded during a drain-first rolling restart; the rest: %v",
			oks, total, counts)
	}
	if st.Shed != 0 {
		t.Fatalf("router shed %d requests with a healthy instance always present", st.Shed)
	}
	if byCode[http.StatusServiceUnavailable].Load() != 0 {
		t.Fatal("router answered 503 during the rolling restart")
	}
	// The epoch ledger: initial(1) + join d + eject a + join e + eject b.
	if st.Epoch < 5 {
		t.Fatalf("epoch %d after two joins and two drain-removals, want ≥ 5", st.Epoch)
	}
	if len(st.Instances) != 3 {
		t.Fatalf("%d members after the rolling restart, want 3", len(st.Instances))
	}
	for _, in := range st.Instances {
		if in.URL == a.URL || in.URL == b.URL {
			t.Fatalf("replaced instance %s still on the ring", in.URL)
		}
	}
	// The Zipf-hot pattern crossed the promotion threshold somewhere in
	// the storm.
	if v := rt.Registry().Value("queryvis_router_hot_promotions_total"); v < 1 {
		t.Errorf("hot pattern never promoted under Zipf load (promotions=%v)", v)
	}

	// Hop accounting on the post-storm ring: a fresh proxied request's
	// assembled trace carries exactly the hops it took — the router's
	// span plus the serving instance's in-process pipeline, and no
	// worker hop because these instances run without a process pool.
	const probeID = "churn-trace-probe"
	probeBody, _ := json.Marshal(diagramReq(qSome + " -- post-churn trace probe"))
	preq, err := http.NewRequest(http.MethodPost, front.URL+"/v1/diagram", bytes.NewReader(probeBody))
	if err != nil {
		t.Fatal(err)
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set("X-Request-ID", probeID)
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatalf("trace probe: %v", err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("trace probe = %d, want 200", presp.StatusCode)
	}
	traceID := presp.Header.Get(telemetry.TraceIDHeader)
	if traceID == "" {
		t.Fatalf("trace probe response missing %s", telemetry.TraceIDHeader)
	}

	tresp, err := http.Get(front.URL + "/v1/traces?request_id=" + probeID)
	if err != nil {
		t.Fatalf("GET /v1/traces: %v", err)
	}
	var traces struct {
		Traces []struct {
			TraceID    string           `json:"trace_id"`
			Spans      []telemetry.Span `json:"spans"`
			MergeError string           `json:"merge_error"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&traces); err != nil {
		t.Fatalf("decode /v1/traces: %v", err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK || len(traces.Traces) != 1 {
		t.Fatalf("/v1/traces?request_id=%s = %d with %d traces, want 200 with 1",
			probeID, tresp.StatusCode, len(traces.Traces))
	}
	tr := traces.Traces[0]
	if tr.TraceID != traceID {
		t.Errorf("assembled trace id %q, response header said %q", tr.TraceID, traceID)
	}
	if tr.MergeError != "" {
		t.Errorf("instance spans failed to merge: %s", tr.MergeError)
	}
	hops := map[string]int{}
	for _, sp := range tr.Spans {
		hops[sp.Name]++
	}
	if hops["router"] != 1 || hops["instance"] != 1 {
		t.Errorf("hop spans = %v, want exactly one router and one instance hop", hops)
	}
	// The probe shares the storm's pattern, so the instance may serve
	// the render from its warm diagram cache — the key-computing stages
	// (parse through build) always run and must appear.
	for _, stage := range []string{"parse", "resolve", "convert", "logictree", "build"} {
		if hops[stage] == 0 {
			t.Errorf("instance stage %q missing from the merged trace: %v", stage, hops)
		}
	}
	if hops["dispatch"] != 0 || hops["worker"] != 0 {
		t.Errorf("in-process instances grew pool hops: %v", hops)
	}
}
