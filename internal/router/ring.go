// Consistent-hash ring. Each backend instance owns Replicas virtual
// points on a uint32 circle; a key routes to the first point at or
// clockwise of its hash, and the ring's walk order from that point
// (deduplicated by instance) is the key's failover preference list.
// Virtual points keep the load split even when instances join or leave,
// and make a key's preference list stable: killing one instance moves
// only that instance's keys, everyone else's cache affinity survives.
//
// Vnode placement is keyed by the member's stable identity (its URL),
// never its slice position: live membership rebuilds the ring with a
// different member list, and an index-keyed ring would re-place every
// surviving instance's points on removal — moving nearly every key for
// a one-instance change. Identity-keyed points guarantee the minimal-
// movement property the membership tests pin down: a join moves only
// the ~K/(N+1) keys the newcomer wins, a removal only the departed
// instance's own keys.
package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

type ringPoint struct {
	hash uint32
	idx  int // index into the member list the ring was built from
}

type ring struct {
	points []ringPoint
	n      int // distinct instances
}

// newRing places replicas points per member, sorted by hash. Point
// hashes depend only on the member id, so a member's placement is
// identical in every ring that contains it. Ties are broken by member
// index so construction is deterministic.
func newRing(members []string, replicas int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*replicas), n: len(members)}
	for i, id := range members {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash32(id + "#" + strconv.Itoa(v)), idx: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].idx < r.points[b].idx
	})
	return r
}

// order returns the key's instance preference: the owner first, then
// each distinct instance met walking clockwise. Every instance appears
// exactly once, so the list is also the failover schedule. An empty
// ring (every member drained away) yields nil.
func (r *ring) order(key string) []int {
	if len(r.points) == 0 {
		return nil
	}
	h := hash32(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i := 0; i < len(r.points) && len(out) < r.n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.idx] {
			seen[p.idx] = true
			out = append(out, p.idx)
		}
	}
	return out
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(s))
	return mix32(h.Sum32())
}

// mix32 is a bijective finalizer (Prospecting-for-Hash-Functions
// constants) applied on top of FNV-1a. Raw FNV of short keys like
// "host#13" keeps additive structure — instance i's vnode hashes land
// at near-constant offsets from instance 0's — which lines the ring up
// so one survivor inherits nearly all of a dead instance's keys. The
// finalizer destroys that correlation so failover load actually
// spreads.
func mix32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

func hash64(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}
