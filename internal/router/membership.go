// Live ring membership. The router's view of its backends is one
// immutable topology value — the member list, their instance state, and
// the consistent-hash ring built over them — behind an atomic pointer.
// Requests load the pointer once and route against a self-consistent
// snapshot; membership changes build a fresh topology under a mutex and
// swap it in with a bumped epoch, so a join or eject lands between two
// requests, never inside one. Instance state (health verdicts, breaker,
// in-flight counts) is carried by pointer from the old topology to the
// new, so surviving members keep their history across every swap.
package router

import (
	"errors"
	"fmt"
	"net/url"
	"strings"
	"time"
)

// topology is one immutable membership snapshot.
type topology struct {
	epoch   uint64
	members []string // instance URLs, the ring's member-id basis
	insts   []*instance
	ring    *ring
}

// find returns the member instance for url, nil when absent.
func (tp *topology) find(url string) *instance {
	for _, in := range tp.insts {
		if in.url == url {
			return in
		}
	}
	return nil
}

// ErrLastMember is returned when an eject (explicit or drain-driven)
// would leave the ring empty. The last member can be drained — it stops
// taking traffic and the router sheds honestly — but never removed:
// a ring with zero members cannot be grown back by a failing router.
var ErrLastMember = errors.New("router: cannot remove the last ring member")

// ErrUnknownMember is returned for operations naming a URL that is not
// on the ring.
var ErrUnknownMember = errors.New("router: no such ring member")

// normalizeMember validates and canonicalizes an instance base URL.
func normalizeMember(raw string) (string, error) {
	s := strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(s)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("router: %q is not an http(s) base URL", raw)
	}
	return s, nil
}

// swap installs a new topology built from members, carrying over the
// instance state of every retained member. Caller holds memberMu.
func (rt *Router) swap(members []string) *topology {
	old := rt.topo.Load()
	nt := &topology{
		epoch:   old.epoch + 1,
		members: members,
		insts:   make([]*instance, len(members)),
		ring:    newRing(members, rt.cfg.Replicas),
	}
	for i, m := range members {
		if in := old.find(m); in != nil {
			nt.insts[i] = in
			continue
		}
		in := &instance{url: m}
		in.healthy.Store(true) // optimistic: see instance.healthy
		nt.insts[i] = in
	}
	rt.topo.Store(nt)
	return nt
}

// Join adds url to the ring (or readmits a draining member) and
// returns the resulting epoch. Joining an existing active member is a
// no-op reporting the current epoch. The joined instance starts
// optimistically healthy and is probed from the next prober cycle; by
// the minimal-movement property of the identity-keyed ring, only the
// ~K/(N+1) keys the newcomer wins move to it.
func (rt *Router) Join(rawURL string) (epoch uint64, status string, err error) {
	u, err := normalizeMember(rawURL)
	if err != nil {
		return 0, "", err
	}
	rt.memberMu.Lock()
	defer rt.memberMu.Unlock()
	cur := rt.topo.Load()
	if in := cur.find(u); in != nil {
		if in.draining.CompareAndSwap(true, false) {
			// Readmission cancels the pending drain; the waiter sees the
			// cleared flag and stands down. The ring never dropped the
			// member, so no keys move.
			rt.countMembership("readmit")
			rt.log("ring member readmitted", "instance", u, "epoch", cur.epoch)
			return cur.epoch, "readmitted", nil
		}
		return cur.epoch, "already_member", nil
	}
	members := append(append([]string{}, cur.members...), u)
	rt.registerInstanceSeries(u)
	nt := rt.swap(members)
	rt.countMembership("join")
	rt.log("ring member joined", "instance", u, "epoch", nt.epoch, "members", len(members))
	return nt.epoch, "joined", nil
}

// Eject removes url from the ring immediately, moving its keys to the
// survivors. In-flight requests already proxied to it finish on their
// own; new assignments stop with the swap. The last member cannot be
// ejected.
func (rt *Router) Eject(rawURL string) (epoch uint64, err error) {
	u, err := normalizeMember(rawURL)
	if err != nil {
		return 0, err
	}
	rt.memberMu.Lock()
	defer rt.memberMu.Unlock()
	cur := rt.topo.Load()
	if cur.find(u) == nil {
		return cur.epoch, ErrUnknownMember
	}
	if len(cur.members) == 1 {
		return cur.epoch, ErrLastMember
	}
	members := make([]string, 0, len(cur.members)-1)
	for _, m := range cur.members {
		if m != u {
			members = append(members, m)
		}
	}
	nt := rt.swap(members)
	rt.countMembership("eject")
	rt.log("ring member ejected", "instance", u, "epoch", nt.epoch, "members", len(members))
	return nt.epoch, nil
}

// Drain begins retiring url: the member stops receiving new
// assignments at once (the ring itself is untouched, so no other key
// moves), in-flight requests finish, and a background waiter ejects the
// member once its in-flight count holds at zero. Draining the last
// member parks it — the waiter retries until another instance joins or
// the router closes. Idempotent while a drain is pending.
func (rt *Router) Drain(rawURL string) (epoch uint64, err error) {
	u, err := normalizeMember(rawURL)
	if err != nil {
		return 0, err
	}
	rt.memberMu.Lock()
	defer rt.memberMu.Unlock()
	cur := rt.topo.Load()
	in := cur.find(u)
	if in == nil {
		return cur.epoch, ErrUnknownMember
	}
	if !in.draining.CompareAndSwap(false, true) {
		return cur.epoch, nil // drain already pending
	}
	rt.countMembership("drain")
	rt.log("ring member draining", "instance", u, "inflight", in.inflight.Load())
	rt.loops.Add(1)
	go rt.awaitDrain(in)
	return cur.epoch, nil
}

// awaitDrain watches a draining member and ejects it once idle. Two
// consecutive zero-in-flight observations are required so a request
// assigned just before the drain flag landed is not raced out of its
// instance.
func (rt *Router) awaitDrain(in *instance) {
	defer rt.loops.Done()
	t := time.NewTicker(rt.cfg.DrainPollInterval)
	defer t.Stop()
	clear := 0
	for {
		select {
		case <-rt.closed:
			return
		case <-t.C:
		}
		if !in.draining.Load() {
			return // readmitted by Join
		}
		if rt.topo.Load().find(in.url) != in {
			return // already ejected (operator DELETE won the race)
		}
		if in.inflight.Load() != 0 {
			clear = 0
			continue
		}
		if clear++; clear < 2 {
			continue
		}
		switch _, err := rt.Eject(in.url); {
		case err == nil:
			rt.log("drain complete, member removed", "instance", in.url)
			return
		case errors.Is(err, ErrLastMember):
			clear = 0 // park: keep waiting for a join or Close
		default:
			return
		}
	}
}

// findInstance resolves a member URL against the current topology.
func (rt *Router) findInstance(url string) *instance {
	return rt.topo.Load().find(url)
}

// registerInstanceSeries creates the per-instance metric series for a
// member URL, once per URL for the router's lifetime. The gauges
// resolve through the current topology at scrape time, so a member that
// leaves reads 0/absent-shaped values and one that rejoins under the
// same URL lights the same series back up — no duplicate families, no
// stale closures over dead instances. Caller holds memberMu (or is
// New, before the router is shared).
func (rt *Router) registerInstanceSeries(url string) {
	if rt.seenURLs[url] {
		return
	}
	rt.seenURLs[url] = true
	rt.reg.Counter(mInstReqs, "Proxied attempts per instance.", "instance", url)
	rt.reg.Counter(mInstFails, "Failed attempts per instance.", "instance", url)
	rt.reg.GaugeFunc(mInstUp, "Prober verdict per instance (1 healthy).", func() float64 {
		if in := rt.findInstance(url); in != nil && in.healthy.Load() {
			return 1
		}
		return 0
	}, "instance", url)
	rt.reg.GaugeFunc(mInstOpen, "Circuit breaker state per instance (1 open).", func() float64 {
		if in := rt.findInstance(url); in != nil && in.breakerOpen(time.Now()) {
			return 1
		}
		return 0
	}, "instance", url)
	rt.reg.GaugeFunc(mInstDraining, "Drain state per instance (1 draining).", func() float64 {
		if in := rt.findInstance(url); in != nil && in.draining.Load() {
			return 1
		}
		return 0
	}, "instance", url)
}

func (rt *Router) countMembership(op string) {
	rt.reg.Counter(mMembership, "Ring membership changes by operation.", "op", op).Inc()
}
