// Deadline-propagation regressions at the router tier: the caller's
// X-Queryvis-Deadline-Ms budget must bound the whole routing attempt
// and reach the instance, so a 5 ms budget can never burn a full
// instance deadline — and a budget that dies mid-failover comes back
// as a categorized 504, not a shed.
package router_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/leak"
	"repro/internal/netchaos"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// slowSeed finds a fault seed whose plan delays the parse stage by at
// least 40ms — far beyond the 5ms budgets these tests grant.
func slowSeed(t *testing.T) int64 {
	t.Helper()
	for seed := int64(1); seed < 1_000_000; seed++ {
		f := faults.NewPlan(seed).Faults[faults.StageParse]
		if f.Action == faults.ActDelay && f.Delay >= 40*time.Millisecond {
			return seed
		}
	}
	t.Fatal("no slow seed found")
	return 0
}

// postWithHeaders is postJSON plus caller-chosen request headers.
func postWithHeaders(t *testing.T, url string, v any, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw := make([]byte, 0, 1024)
	buf := make([]byte, 4096)
	for {
		n, rerr := resp.Body.Read(buf)
		raw = append(raw, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	return resp.StatusCode, resp.Header, raw
}

// TestDeadlineBudgetReachesInstance: a 5 ms budget against a pipeline
// pinned ≥40 ms slow must come back as a 504 — the instance, whose own
// deadline is 5 s, would otherwise finish the query and answer 200, so
// the 504 is proof the shrunken budget crossed the router hop.
func TestDeadlineBudgetReachesInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real instance process")
	}
	t.Cleanup(leak.Check(t))
	t.Cleanup(leak.CheckChildren(t))
	seed := slowSeed(t)

	a := startInstance(t)
	rt, err := router.New(router.Config{
		Backends:       []string{a.URL},
		HealthInterval: time.Hour,
		Metrics:        telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	start := time.Now()
	st, _, raw := postWithHeaders(t, front.URL+"/v1/diagram", diagramReq(qSome), map[string]string{
		"X-Fault-Seed":           fmt.Sprint(seed),
		telemetry.DeadlineHeader: "5",
	})
	elapsed := time.Since(start)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (5ms budget vs ≥40ms pipeline)\n%s", st, raw)
	}
	if !strings.Contains(string(raw), `"timeout"`) {
		t.Fatalf("expected a categorized timeout body, got %s", raw)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("5ms budget burned %v end-to-end", elapsed)
	}
	// Control: the same slow request with no budget completes — the
	// instance's own 5s deadline was never the binding constraint above.
	st, _, raw = postWithHeaders(t, front.URL+"/v1/diagram", diagramReq(qSome), map[string]string{
		"X-Fault-Seed": fmt.Sprint(seed),
	})
	if st != http.StatusOK {
		t.Fatalf("control without budget: status = %d\n%s", st, raw)
	}
}

// TestDeadlineBudgetExhaustedMidFailover: when the budget dies while
// the only instance is blackholed behind a partition, the router must
// answer its own categorized 504 — not park until InstanceTimeout and
// not mint a 503 that invites an instant retry.
func TestDeadlineBudgetExhaustedMidFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real instance process")
	}
	t.Cleanup(leak.Check(t))
	t.Cleanup(leak.CheckChildren(t))

	a := startInstance(t)
	px, err := netchaos.New(netchaos.Config{Target: strings.TrimPrefix(a.URL, "http://"), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = px.Close() })

	rt, err := router.New(router.Config{
		Backends:       []string{px.URL()},
		HealthInterval: time.Hour,
		Metrics:        telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	px.Partition()
	start := time.Now()
	st, _, raw := postWithHeaders(t, front.URL+"/v1/diagram", diagramReq(qSome), map[string]string{
		telemetry.DeadlineHeader: "100",
	})
	elapsed := time.Since(start)
	if st != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want router-origin 504\n%s", st, raw)
	}
	if !strings.Contains(string(raw), `"timeout"`) {
		t.Fatalf("expected a categorized timeout body, got %s", raw)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("100ms budget took %v against a partitioned instance", elapsed)
	}
	px.Heal()
	px.SeverAll()
}
