// Instance-level kill-storm: real queryvisd-shaped child processes
// behind the router, SIGKILLed mid-run. The contract under test is the
// scale-out analogue of the pool's worker kill-storm — every client
// gets a well-formed response (200 diagram, or a categorized JSON
// error), never a hang, never a malformed body, and the router process
// leaks neither goroutines nor children.
package router_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/leak"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// TestRouterKillStorm: 3 live instances, ~300 requests at full tilt,
// one instance SIGKILLed at ~1/3 and another at ~2/3 — finishing on a
// single survivor. Clients use internal/client with failover-tuned
// retries; 100% of final outcomes must be well-formed and the clear
// majority must succeed.
func TestRouterKillStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real instance processes")
	}
	// Registered first so they run last: after the router and all
	// children are torn down, nothing of ours may survive.
	t.Cleanup(leak.Check(t))
	t.Cleanup(leak.CheckChildren(t))

	const instances = 3
	ring := make([]*testInstance, instances)
	urls := make([]string, instances)
	for i := range ring {
		ring[i] = startInstance(t)
		urls[i] = ring[i].URL
	}

	rt, err := router.New(router.Config{
		Backends:           urls,
		HealthInterval:     50 * time.Millisecond,
		BreakerThreshold:   2,
		BreakerCooldown:    250 * time.Millisecond,
		InstanceAttempts:   2,
		InstanceMaxElapsed: 500 * time.Millisecond,
		Metrics:            telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	const (
		total       = 300
		concurrency = 16
		kill1       = total / 3
		kill2       = 2 * total / 3
	)
	var (
		started atomic.Int64
		byCode  [600]atomic.Int64
		mu      sync.Mutex
		bad     []string
	)
	malformed := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if len(bad) < 10 {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
	}

	// One chaos goroutine triggers the kills at request-count milestones
	// so they land mid-storm regardless of wall-clock speed.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for started.Load() < kill1 {
			time.Sleep(time.Millisecond)
		}
		ring[0].Kill()
		t.Log("killed instance 0")
		for started.Load() < kill2 {
			time.Sleep(time.Millisecond)
		}
		ring[1].Kill()
		t.Log("killed instance 1")
	}()

	var wg sync.WaitGroup
	work := make(chan int)
	for g := 0; g < concurrency; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Per-goroutine client: retries + Retry-After honoring, but
			// capped so a dead-instance window degrades to an error
			// instead of stalling the storm.
			cl := client.New(client.Config{
				HTTPClient:  &http.Client{Timeout: 5 * time.Second},
				MaxAttempts: 4,
				BaseBackoff: 10 * time.Millisecond,
				MaxBackoff:  250 * time.Millisecond,
				MaxElapsed:  3 * time.Second,
				Seed:        int64(1000 + g),
			})
			for i := range work {
				// A seeded mix of distinct bodies spreads keys across the
				// whole ring so both kills hit owned keyspace.
				sql := fmt.Sprintf("%s -- storm %d", qSome, i%17)
				resp, err := cl.PostJSON(context.Background(),
					front.URL+"/v1/diagram", diagramReq(sql))
				if err != nil {
					// Transport-level failure is allowed mid-kill (the
					// in-flight TCP connection died with the instance); it
					// is still a well-formed outcome for accounting as long
					// as it is an error, not a mangled body.
					byCode[0].Add(1)
					continue
				}
				raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
				resp.Body.Close()
				if rerr != nil {
					byCode[0].Add(1)
					continue
				}
				byCode[resp.StatusCode].Add(1)
				switch {
				case resp.StatusCode == http.StatusOK:
					var body struct {
						Diagram string `json:"diagram"`
					}
					if json.Unmarshal(raw, &body) != nil || body.Diagram == "" {
						malformed("req %d: 200 with bad body %.120s", i, raw)
					}
				default:
					var eb struct {
						Error struct {
							Category string `json:"category"`
							Message  string `json:"message"`
						} `json:"error"`
					}
					if json.Unmarshal(raw, &eb) != nil || eb.Error.Category == "" {
						malformed("req %d: status %d with non-error body %.120s",
							i, resp.StatusCode, raw)
					}
				}
			}
		}(g)
	}
	for i := 0; i < total; i++ {
		started.Add(1)
		work <- i
	}
	close(work)
	wg.Wait()
	<-killed

	var sum, oks int64
	counts := map[int]int64{}
	for code := range byCode {
		if n := byCode[code].Load(); n > 0 {
			counts[code] = n
			sum += n
			if code == http.StatusOK {
				oks = n
			}
		}
	}
	t.Logf("outcomes by status (0 = transport error): %v", counts)
	t.Logf("router state after storm: %+v", rt.State())

	for _, m := range bad {
		t.Error(m)
	}
	if sum != total {
		t.Fatalf("accounted for %d of %d requests", sum, total)
	}
	if oks < total/2 {
		t.Fatalf("only %d/%d requests succeeded; failover is not working", oks, total)
	}

	// The survivor must still carry traffic and the router must know
	// exactly who is alive.
	st, _, raw := postJSON(t, front.URL+"/v1/diagram", diagramReq(qSome))
	if st != http.StatusOK {
		t.Fatalf("survivor unreachable after storm: status %d body %.200s", st, raw)
	}
	waitUntil(t, 5*time.Second, func() bool {
		healthy := 0
		for _, in := range rt.State().Instances {
			if in.Healthy {
				healthy++
			}
		}
		return healthy == 1
	})
}

// TestRouterSurvivesColdStartAgainstDeadRing: a router brought up
// pointing at instances that are already gone must not hang or crash —
// it sheds honestly until an instance appears.
func TestRouterSurvivesColdStartAgainstDeadRing(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real instance process")
	}
	t.Cleanup(leak.Check(t))
	t.Cleanup(leak.CheckChildren(t))

	// A real instance whose address we take and then kill immediately:
	// the router starts against a plausible-but-dead backend.
	ti := startInstance(t)
	ti.Kill()

	rt, err := router.New(router.Config{
		Backends:           []string{ti.URL},
		HealthInterval:     25 * time.Millisecond,
		InstanceAttempts:   1,
		InstanceMaxElapsed: 200 * time.Millisecond,
		Metrics:            telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	waitUntil(t, 5*time.Second, func() bool { return rt.State().Status == "unhealthy" })
	st, hdr, raw := postJSON(t, front.URL+"/v1/diagram", diagramReq(qSome))
	if st != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("dead-ring cold start: status %d Retry-After %q body %.200s",
			st, hdr.Get("Retry-After"), raw)
	}
}
