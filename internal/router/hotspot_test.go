// White-box tests for the decaying-counter hot-pattern tracker:
// promotion after sustained load, demotion after the spike subsides,
// rotation of the replica cursor, and the bounded-table sweep. Time is
// passed explicitly, so decay behavior is exact — no sleeps.
package router

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/telemetry"
)

func TestHottabPromotesOnSustainedRate(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := newHottab(64, time.Second, 100, reg) // promoteCount ≈ 144.3

	// 50 req/s for one second: decayed count stays well under the
	// 100 rps threshold's equivalent — never promoted.
	base := time.Unix(1000, 0)
	for i := 0; i < 50; i++ {
		if p, _ := h.touch("mild", base.Add(time.Duration(i)*20*time.Millisecond)); p {
			t.Fatalf("touch %d at 50 rps promoted (threshold 100 rps)", i)
		}
	}

	// 500 req/s: crosses within well under a second.
	promoted := false
	for i := 0; i < 500; i++ {
		if p, _ := h.touch("viral", base.Add(time.Duration(i)*2*time.Millisecond)); p {
			promoted = true
			break
		}
	}
	if !promoted {
		t.Fatal("500 rps never promoted against a 100 rps threshold")
	}
	if h.promotedCount() != 1 {
		t.Fatalf("promotedCount = %d, want 1", h.promotedCount())
	}
	if reg.Value(mHotPromotions) != 1 {
		t.Fatalf("promotion counter = %v, want 1", reg.Value(mHotPromotions))
	}
}

func TestHottabDemotesAfterSpikeSubsides(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := newHottab(64, 100*time.Millisecond, 50, reg)

	base := time.Unix(2000, 0)
	now := base
	for i := 0; i < 200; i++ {
		now = base.Add(time.Duration(i) * time.Millisecond) // 1000 rps
		h.touch("spike", now)
	}
	if h.promotedCount() != 1 {
		t.Fatal("spike never promoted")
	}
	// The spike ends; ten half-lives later one stray request arrives and
	// must route plain (hysteresis floor is promote/2).
	p, _ := h.touch("spike", now.Add(time.Second))
	if p {
		t.Fatal("still promoted ten half-lives after the spike ended")
	}
	if h.promotedCount() != 0 {
		t.Fatalf("promotedCount = %d after demotion, want 0", h.promotedCount())
	}
	if reg.Value(mHotDemotions) != 1 {
		t.Fatalf("demotion counter = %v, want 1", reg.Value(mHotDemotions))
	}
}

func TestHottabRotatesPromotedCursor(t *testing.T) {
	h := newHottab(64, time.Second, 1, telemetry.NewRegistry())
	base := time.Unix(3000, 0)
	var rots []uint32
	for i := 0; i < 10; i++ {
		p, rot := h.touch("hot", base.Add(time.Duration(i)*time.Millisecond))
		if p {
			rots = append(rots, rot)
		}
	}
	if len(rots) < 4 {
		t.Fatalf("pattern promoted for only %d touches", len(rots))
	}
	for i := 1; i < len(rots); i++ {
		if rots[i] != rots[i-1]+1 {
			t.Fatalf("rotation cursor not advancing: %v", rots)
		}
	}
}

func TestHottabStaysBounded(t *testing.T) {
	h := newHottab(8, 10*time.Millisecond, 1000, telemetry.NewRegistry())
	base := time.Unix(4000, 0)
	// 1000 distinct cold keys spread over time: the sweep keeps the
	// table at its cap no matter how many keys pass through.
	for i := 0; i < 1000; i++ {
		h.touch(fmt.Sprintf("key-%d", i), base.Add(time.Duration(i)*time.Millisecond))
	}
	if n := h.tracked(); n > 8 {
		t.Fatalf("hottab tracked %d keys past its cap of 8", n)
	}
}
