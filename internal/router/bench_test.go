package router_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// BenchmarkRouterAddedLatency prices the routing hop: POST /v1/diagram
// against one in-process instance directly ("direct"), then through the
// consistent-hash router over 1, 2, and 4 identical instances. The p50
// delta between a router column and "direct" is the fabric's added
// latency — one extra HTTP hop, the body hash, the ring walk — and is
// recorded in BENCH_server.json. All instances are in-process handlers,
// so the columns isolate the router's own cost, not instance load.
func BenchmarkRouterAddedLatency(b *testing.B) {
	body, err := json.Marshal(diagramReq(qSome))
	if err != nil {
		b.Fatal(err)
	}
	newInstance := func() *httptest.Server {
		return httptest.NewServer(server.New(server.Config{CacheEntries: 0}))
	}

	b.Run("direct", func(b *testing.B) {
		ts := newInstance()
		defer ts.Close()
		benchFront(b, ts.URL, body)
	})

	for _, n := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "router-1", 2: "router-2", 4: "router-4"}[n], func(b *testing.B) {
			urls := make([]string, n)
			for i := range urls {
				ts := newInstance()
				defer ts.Close()
				urls[i] = ts.URL
			}
			rt, err := router.New(router.Config{
				Backends: urls,
				Metrics:  telemetry.NewRegistry(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			front := httptest.NewServer(rt)
			defer front.Close()
			benchFront(b, front.URL, body)
		})
	}
}

// benchFront hammers url's /v1/diagram from 8 parallel workers and
// reports throughput plus p50/p99 — the same shape as the server and
// workerpool endpoint benchmarks, so columns compare.
func benchFront(b *testing.B, url string, body []byte) {
	b.Helper()
	benchFrontMix(b, url, func() []byte { return body })
}

// benchFrontMix is benchFront with a caller-supplied body picker, for
// benchmarks whose point is the traffic mix rather than one request.
func benchFrontMix(b *testing.B, url string, pick func() []byte) {
	b.Helper()
	const workers = 8
	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	defer client.CloseIdleConnections()
	b.ResetTimer()
	start := time.Now()
	b.SetParallelism(workers)
	b.RunParallel(func(pb *testing.PB) {
		var local []time.Duration
		for pb.Next() {
			t0 := time.Now()
			resp, err := client.Post(url+"/v1/diagram", "application/json", bytes.NewReader(pick()))
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status = %d", resp.StatusCode)
				return
			}
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		latencies = append(latencies, local...)
		mu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()
	reportLatencies(b, latencies, elapsed)
}

// reportLatencies emits the shared req/s + p50/p99 metric columns.
func reportLatencies(b *testing.B, latencies []time.Duration, elapsed time.Duration) {
	b.Helper()
	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p int) time.Duration {
		i := len(latencies) * p / 100
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(pct(50).Microseconds())/1000, "p50-ms")
	b.ReportMetric(float64(pct(99).Microseconds())/1000, "p99-ms")
}

// BenchmarkRouterHotReplication prices hot-pattern replication under a
// Zipf-skewed mix: 12 query patterns drawn with exponent 1.4 (rank 0
// dominating) across 3 instances, with the replication layer off
// (HotThresholdRPS 0 — the viral pattern pins its owner) and on
// (promoted patterns rotate across 2 ring candidates). Besides the
// usual latency columns each run reports max-share — the busiest
// instance's fraction of all proxied requests — which is the imbalance
// the layer exists to fix. On this 1-core host all instances share the
// CPU, so the win shows in max-share and tail, not raw throughput; see
// EXPERIMENTS.md "Hot-pattern replication".
func BenchmarkRouterHotReplication(b *testing.B) {
	const ranks = 12
	bodies := make([][]byte, ranks)
	for r := range bodies {
		raw, err := json.Marshal(diagramReq(fmt.Sprintf("%s -- rank %d", qSome, r)))
		if err != nil {
			b.Fatal(err)
		}
		bodies[r] = raw
	}
	// One seeded Zipf sequence shared by both columns, so they see the
	// identical arrival mix.
	zipf := rand.NewZipf(rand.New(rand.NewSource(7)), 1.4, 1, ranks-1)
	seq := make([]uint32, 1<<16)
	for i := range seq {
		seq[i] = uint32(zipf.Uint64())
	}

	for _, mode := range []struct {
		name string
		rps  float64
	}{
		{"hot-off", 0},
		{"hot-on", 50},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var counts [3]atomic.Int64
			urls := make([]string, 3)
			for i := range urls {
				i := i
				h := server.New(server.Config{CacheEntries: 0})
				ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					counts[i].Add(1)
					h.ServeHTTP(w, r)
				}))
				defer ts.Close()
				urls[i] = ts.URL
			}
			rt, err := router.New(router.Config{
				Backends:        urls,
				HotThresholdRPS: mode.rps,
				HotReplicas:     2,
				HotHalfLife:     500 * time.Millisecond,
				Metrics:         telemetry.NewRegistry(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			front := httptest.NewServer(rt)
			defer front.Close()

			var next atomic.Uint64
			benchFrontMix(b, front.URL, func() []byte {
				return bodies[seq[next.Add(1)%uint64(len(seq))]]
			})

			var total int64
			var max int64
			for i := range counts {
				n := counts[i].Load()
				total += n
				if n > max {
					max = n
				}
			}
			if total > 0 {
				b.ReportMetric(float64(max)/float64(total), "max-share")
			}
		})
	}
}

// BenchmarkRouterFailoverStampede prices stampede control during the
// failover window: one ring member is dead (connection refused) but not
// yet detected — the probe interval is an hour and the breaker
// threshold unreachable, freezing the router inside the window — and
// each iteration fires a storm of 16 byte-identical requests on a fresh
// key. Without stampede control every storm member independently pays
// the dead-instance dial plus its own upstream call; with it the
// leader pays once and 15 followers coalesce onto the shared result.
// The p99 across all storm members is the failover-window tail recorded
// in BENCH_server.json.
func BenchmarkRouterFailoverStampede(b *testing.B) {
	for _, mode := range []struct {
		name string
		ttl  time.Duration
	}{
		{"stampede-off", 0},
		{"stampede-on", 500 * time.Millisecond},
	} {
		b.Run(mode.name, func(b *testing.B) {
			live := httptest.NewServer(server.New(server.Config{CacheEntries: 0}))
			defer live.Close()
			dead := httptest.NewServer(http.NotFoundHandler())
			deadURL := dead.URL
			dead.Close() // the port now refuses connections

			rt, err := router.New(router.Config{
				Backends:         []string{deadURL, live.URL},
				HealthInterval:   time.Hour, // the detection window never closes
				BreakerThreshold: 1 << 20,   // nor does the breaker end it
				InstanceAttempts: 1,
				StampedeTTL:      mode.ttl,
				Metrics:          telemetry.NewRegistry(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			front := httptest.NewServer(rt)
			defer front.Close()

			const storm = 16
			client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2 * storm}}
			defer client.CloseIdleConnections()
			var (
				mu        sync.Mutex
				latencies []time.Duration
			)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				body, err := json.Marshal(diagramReq(fmt.Sprintf("%s -- storm %d", qSome, i)))
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				for w := 0; w < storm; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						t0 := time.Now()
						resp, err := client.Post(front.URL+"/v1/diagram", "application/json", bytes.NewReader(body))
						if err != nil {
							b.Error(err)
							return
						}
						_, _ = io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							b.Errorf("status = %d", resp.StatusCode)
							return
						}
						d := time.Since(t0)
						mu.Lock()
						latencies = append(latencies, d)
						mu.Unlock()
					}()
				}
				wg.Wait()
			}
			elapsed := time.Since(start)
			b.StopTimer()
			reportLatencies(b, latencies, elapsed)
		})
	}
}
