package router_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// BenchmarkRouterAddedLatency prices the routing hop: POST /v1/diagram
// against one in-process instance directly ("direct"), then through the
// consistent-hash router over 1, 2, and 4 identical instances. The p50
// delta between a router column and "direct" is the fabric's added
// latency — one extra HTTP hop, the body hash, the ring walk — and is
// recorded in BENCH_server.json. All instances are in-process handlers,
// so the columns isolate the router's own cost, not instance load.
func BenchmarkRouterAddedLatency(b *testing.B) {
	body, err := json.Marshal(diagramReq(qSome))
	if err != nil {
		b.Fatal(err)
	}
	newInstance := func() *httptest.Server {
		return httptest.NewServer(server.New(server.Config{CacheEntries: 0}))
	}

	b.Run("direct", func(b *testing.B) {
		ts := newInstance()
		defer ts.Close()
		benchFront(b, ts.URL, body)
	})

	for _, n := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "router-1", 2: "router-2", 4: "router-4"}[n], func(b *testing.B) {
			urls := make([]string, n)
			for i := range urls {
				ts := newInstance()
				defer ts.Close()
				urls[i] = ts.URL
			}
			rt, err := router.New(router.Config{
				Backends: urls,
				Metrics:  telemetry.NewRegistry(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			front := httptest.NewServer(rt)
			defer front.Close()
			benchFront(b, front.URL, body)
		})
	}
}

// benchFront hammers url's /v1/diagram from 8 parallel workers and
// reports throughput plus p50/p99 — the same shape as the server and
// workerpool endpoint benchmarks, so columns compare.
func benchFront(b *testing.B, url string, body []byte) {
	b.Helper()
	const workers = 8
	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	defer client.CloseIdleConnections()
	b.ResetTimer()
	start := time.Now()
	b.SetParallelism(workers)
	b.RunParallel(func(pb *testing.PB) {
		var local []time.Duration
		for pb.Next() {
			t0 := time.Now()
			resp, err := client.Post(url+"/v1/diagram", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status = %d", resp.StatusCode)
				return
			}
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		latencies = append(latencies, local...)
		mu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if len(latencies) == 0 {
		return
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p int) time.Duration {
		i := len(latencies) * p / 100
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	b.ReportMetric(float64(len(latencies))/elapsed.Seconds(), "req/s")
	b.ReportMetric(float64(pct(50).Microseconds())/1000, "p50-ms")
	b.ReportMetric(float64(pct(99).Microseconds())/1000, "p99-ms")
}
