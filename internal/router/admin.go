// The ring's admin surface: live membership over HTTP, gated by a
// bearer token. Three operations — join, drain, eject — cover the
// whole operational lifecycle of an instance without restarting the
// router:
//
//	POST   /v1/ring/instances  {"url": "http://host:port"}   join / readmit
//	POST   /v1/ring/drain      {"url": "http://host:port"}   graceful retire
//	DELETE /v1/ring/instances?url=http://host:port           immediate eject
//
// Every response is the service's categorized JSON wire shape with an
// X-Request-ID, so admin failures are as diagnosable as routed ones.
// Without a configured AdminToken the surface answers 403 for every
// call — a router that was not told to accept membership changes
// accepts none.
package router

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
)

// ringChange is the admin request body for join and drain.
type ringChange struct {
	URL string `json:"url"`
}

// RingStatus is the admin surface's success response: what happened,
// the resulting epoch, and the membership after the change.
type RingStatus struct {
	Status  string   `json:"status"`
	URL     string   `json:"url"`
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// authorized checks the bearer token in constant time. An empty
// configured token disables the surface outright.
func (rt *Router) authorized(r *http.Request) bool {
	if rt.cfg.AdminToken == "" {
		return false
	}
	tok, _ := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if tok == "" {
		tok = r.Header.Get("X-Admin-Token")
	}
	return subtle.ConstantTimeCompare([]byte(tok), []byte(rt.cfg.AdminToken)) == 1
}

// handleAdmin dispatches the /v1/ring/* surface.
func (rt *Router) handleAdmin(w http.ResponseWriter, r *http.Request) {
	if rt.cfg.AdminToken == "" {
		rt.fail(w, r, http.StatusForbidden, "admin_disabled",
			"ring admin is disabled: the router was started without an admin token")
		return
	}
	if !rt.authorized(r) {
		w.Header().Set("WWW-Authenticate", `Bearer realm="queryvis-ring"`)
		rt.fail(w, r, http.StatusUnauthorized, "unauthorized",
			"ring admin requires the configured bearer token")
		return
	}
	switch {
	case r.URL.Path == "/v1/ring/instances" && r.Method == http.MethodPost:
		rt.adminJoin(w, r)
	case r.URL.Path == "/v1/ring/instances" && r.Method == http.MethodDelete:
		rt.adminEject(w, r)
	case r.URL.Path == "/v1/ring/drain" && r.Method == http.MethodPost:
		rt.adminDrain(w, r)
	default:
		rt.fail(w, r, http.StatusMethodNotAllowed, "bad_request",
			"unsupported ring admin method or path")
	}
}

// adminURL extracts the target instance URL from the JSON body, with
// the ?url= query as a curl-friendly fallback.
func (rt *Router) adminURL(r *http.Request) (string, bool) {
	if q := r.URL.Query().Get("url"); q != "" {
		return q, true
	}
	raw, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		return "", false
	}
	var c ringChange
	if json.Unmarshal(raw, &c) != nil || c.URL == "" {
		return "", false
	}
	return c.URL, true
}

func (rt *Router) adminJoin(w http.ResponseWriter, r *http.Request) {
	u, ok := rt.adminURL(r)
	if !ok {
		rt.fail(w, r, http.StatusBadRequest, "bad_request", `join wants {"url": "http://host:port"}`)
		return
	}
	epoch, status, err := rt.Join(u)
	if err != nil {
		rt.fail(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	rt.ringStatus(w, r, http.StatusOK, status, u, epoch)
}

func (rt *Router) adminDrain(w http.ResponseWriter, r *http.Request) {
	u, ok := rt.adminURL(r)
	if !ok {
		rt.fail(w, r, http.StatusBadRequest, "bad_request", `drain wants {"url": "http://host:port"}`)
		return
	}
	epoch, err := rt.Drain(u)
	switch {
	case errors.Is(err, ErrUnknownMember):
		rt.fail(w, r, http.StatusNotFound, "not_found", "no such ring member: "+u)
		return
	case err != nil:
		rt.fail(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	// 202: the retirement is underway — removal lands when in-flight
	// requests finish, observable via /v1/healthz epoch and member list.
	rt.ringStatus(w, r, http.StatusAccepted, "draining", u, epoch)
}

func (rt *Router) adminEject(w http.ResponseWriter, r *http.Request) {
	u, ok := rt.adminURL(r)
	if !ok {
		rt.fail(w, r, http.StatusBadRequest, "bad_request", "eject wants ?url= or a JSON body")
		return
	}
	epoch, err := rt.Eject(u)
	switch {
	case errors.Is(err, ErrUnknownMember):
		rt.fail(w, r, http.StatusNotFound, "not_found", "no such ring member: "+u)
		return
	case errors.Is(err, ErrLastMember):
		rt.fail(w, r, http.StatusConflict, "conflict", "refusing to remove the last ring member; drain it instead")
		return
	case err != nil:
		rt.fail(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	rt.ringStatus(w, r, http.StatusOK, "ejected", u, epoch)
}

// ringStatus writes the admin success envelope from a fresh topology
// snapshot.
func (rt *Router) ringStatus(w http.ResponseWriter, r *http.Request, code int, status, u string, epoch uint64) {
	tp := rt.topo.Load()
	members := append([]string{}, tp.members...)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-Id", rt.requestID(r))
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(RingStatus{
		Status: status, URL: u, Epoch: max(epoch, tp.epoch), Members: members,
	})
}
