// Hot-pattern replication. The consistent-hash ring pins each pattern
// to one owner, which is exactly right until one pattern goes viral:
// the owner saturates while the rest of the ring idles, and no amount
// of healthy capacity helps because the hash always picks the same
// victim. The hottab watches per-pattern request rates with
// exponentially decaying counters — bounded memory, no clock ticks, no
// global coordination — and promotes any pattern whose decayed rate
// crosses the threshold to replicated reads: its requests rotate
// round-robin across the first R candidates of its ring order instead
// of hammering the owner alone. The pattern-keyed cache makes this
// safe (same pattern ⇒ same diagram, so any replica's answer is the
// answer); the only cost is R caches warming the pattern instead of
// one. Demotion is automatic with hysteresis: when the spike subsides
// the rate decays below half the promotion threshold and the pattern
// collapses back onto its owner.
package router

import (
	"math"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// ln2 converts between a decayed event count and an events-per-second
// rate estimate: at steady rate R with half-life H, the decayed count
// converges to R·H/ln2.
const ln2 = 0.6931471805599453

type hotEntry struct {
	count    float64 // exponentially decayed request count
	last     time.Time
	promoted bool
	rr       uint32 // round-robin cursor across the replica set
}

// hottab tracks per-routing-key request rates in a bounded table.
type hottab struct {
	mu sync.Mutex
	m  map[string]*hotEntry

	cap          int
	halfLife     time.Duration
	promoteCount float64 // decayed-count equivalent of the promote RPS
	demoteCount  float64 // hysteresis floor (promote/2)
	promotedN    int     // currently promoted entries

	cPromote *telemetry.Counter
	cDemote  *telemetry.Counter
}

func newHottab(capacity int, halfLife time.Duration, promoteRPS float64, reg *telemetry.Registry) *hottab {
	promoteCount := promoteRPS * halfLife.Seconds() / ln2
	return &hottab{
		m:            make(map[string]*hotEntry),
		cap:          capacity,
		halfLife:     halfLife,
		promoteCount: promoteCount,
		demoteCount:  promoteCount / 2,
		cPromote:     reg.Counter(mHotPromotions, "Patterns promoted to replicated reads."),
		cDemote:      reg.Counter(mHotDemotions, "Patterns demoted back to single-owner routing."),
	}
}

// touch records one request for key and reports whether the key is
// currently promoted, plus a round-robin cursor for spreading the
// request across the replica set.
func (h *hottab) touch(key string, now time.Time) (promoted bool, rot uint32) {
	h.mu.Lock()
	defer h.mu.Unlock()
	e := h.m[key]
	if e == nil {
		if len(h.m) >= h.cap {
			h.sweepLocked(now)
		}
		if len(h.m) >= h.cap {
			// Table saturated with warmer keys; an untracked key cannot
			// promote, which only delays — never prevents — promotion:
			// a genuinely viral pattern outlives the sweep horizon of
			// whatever it displaced.
			return false, 0
		}
		e = &hotEntry{last: now}
		h.m[key] = e
	}
	if dt := now.Sub(e.last); dt > 0 {
		e.count *= math.Exp2(-float64(dt) / float64(h.halfLife))
		e.last = now
	}
	e.count++
	switch {
	case !e.promoted && e.count >= h.promoteCount:
		e.promoted = true
		h.promotedN++
		h.cPromote.Inc()
	case e.promoted && e.count < h.demoteCount:
		e.promoted = false
		h.promotedN--
		h.cDemote.Inc()
	}
	e.rr++
	return e.promoted, e.rr
}

// sweepLocked evicts entries that have gone cold: idle past several
// half-lives, or decayed far below the demotion floor without ever
// promoting. Promoted entries are demoted first if their decayed count
// says the spike is over, so the demotion counter stays truthful.
func (h *hottab) sweepLocked(now time.Time) {
	idleHorizon := 8 * h.halfLife
	for k, e := range h.m {
		decayed := e.count * math.Exp2(-float64(now.Sub(e.last))/float64(h.halfLife))
		if e.promoted && decayed < h.demoteCount {
			e.promoted = false
			h.promotedN--
			h.cDemote.Inc()
		}
		if e.promoted {
			continue
		}
		if now.Sub(e.last) > idleHorizon || decayed < h.demoteCount/4 {
			delete(h.m, k)
		}
	}
}

// promotedCount reports how many patterns are replicated right now.
func (h *hottab) promotedCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.promotedN
}

// tracked reports the table's current size.
func (h *hottab) tracked() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.m)
}
