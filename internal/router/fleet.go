package router

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// The router's fleet-observability surface: GET /v1/traces assembles
// whole-fleet trace trees, GET /v1/fleet aggregates member health. Both
// are read paths built from scrapes — the hot proxy path records only
// the router's own span into a local ring and never blocks on a peer.

// fleetTraceItem is one /v1/traces result: the router's record with the
// serving instance's spans merged in (when resolvable) and the rendered
// tree. MergeError reports a failed instance scrape — the router's own
// span still renders, so a partial trace is still a usable trace.
type fleetTraceItem struct {
	telemetry.TraceRecord
	Tree       string `json:"tree"`
	MergeError string `json:"merge_error,omitempty"`
}

type fleetTracesResponse struct {
	Total  uint64           `json:"total"`
	Held   int              `json:"held"`
	Traces []fleetTraceItem `json:"traces"`
}

// fleetTraceLimit bounds an unfiltered /v1/traces response; targeted
// lookups (request_id / trace_id) merge instance spans, so the
// unfiltered listing serves router spans only and stays cheap.
const fleetTraceLimit = 32

// handleTraces serves the router's trace ring. Unfiltered, it lists the
// router's hop spans newest-first. Filtered by request_id or trace_id —
// the "where did my request go" lookup — it additionally scrapes
// /v1/traces?trace_id= on the instance that served the request and
// grafts the instance's span subtree (instance handler, dispatch,
// worker, pipeline stages) under the router's span, returning the one
// merged fleet-wide tree the tentpole promises.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		rt.fail(w, r, http.StatusMethodNotAllowed, "bad_request", "use GET")
		return
	}
	q := r.URL.Query()
	f := telemetry.TraceFilter{
		RequestID: q.Get("request_id"),
		TraceID:   q.Get("trace_id"),
		Pattern:   q.Get("pattern"),
	}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			rt.fail(w, r, http.StatusBadRequest, "bad_request", "min_ms must be a non-negative number")
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	limit := fleetTraceLimit
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			rt.fail(w, r, http.StatusBadRequest, "bad_request", "limit must be a positive integer")
			return
		}
		limit = n
	}
	recs := rt.traces.Snapshot(f)
	if len(recs) > limit {
		recs = recs[:limit]
	}
	merge := f.RequestID != "" || f.TraceID != ""
	resp := fleetTracesResponse{
		Total:  rt.traces.Total(),
		Held:   rt.traces.Len(),
		Traces: make([]fleetTraceItem, len(recs)),
	}
	for i, rec := range recs {
		item := fleetTraceItem{TraceRecord: rec}
		if merge {
			if spans, err := rt.scrapeInstanceTrace(r.Context(), rec); err != nil {
				item.MergeError = err.Error()
			} else {
				item.Spans = append(append([]telemetry.Span(nil), item.Spans...), spans...)
			}
		}
		item.Tree = telemetry.FormatTree(item.Spans)
		resp.Traces[i] = item
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// scrapeInstanceTrace fetches the serving instance's spans for one
// router trace record. The instance URL comes from the router span's
// own "instance" annotation; records without one (shed, cache-shared,
// all-failed) have nothing to merge.
func (rt *Router) scrapeInstanceTrace(ctx context.Context, rec telemetry.TraceRecord) ([]telemetry.Span, error) {
	var instURL string
	for _, sp := range rec.Spans {
		if u := sp.Attr("instance"); u != "" {
			instURL = u
			break
		}
	}
	if instURL == "" {
		return nil, nil // nothing upstream served this trace
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		instURL+"/v1/traces?trace_id="+rec.TraceID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &scrapeError{instURL, resp.StatusCode}
	}
	var body struct {
		Traces []struct {
			Spans []telemetry.Span `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	var spans []telemetry.Span
	for _, t := range body.Traces {
		spans = append(spans, t.Spans...)
	}
	return spans, nil
}

type scrapeError struct {
	url    string
	status int
}

func (e *scrapeError) Error() string {
	return "scraping " + e.url + " answered HTTP " + strconv.Itoa(e.status)
}

// fleetMember is one ring member's scrape in the /v1/fleet aggregate.
type fleetMember struct {
	URL string `json:"url"`
	// Healthz is the member's own /v1/healthz body, verbatim; absent
	// when the scrape failed.
	Healthz json.RawMessage `json:"healthz,omitempty"`
	Error   string          `json:"error,omitempty"`
}

// fleetResponse is the /v1/fleet body: the router's own state plus
// every member's healthz, so one endpoint answers "is the fleet healthy
// and where is time going." When a fleet supervisor is attached (see
// SetFleetStatus), its reconciliation status — desired members, streaks,
// the action log, budget denials — rides along, making this the one
// endpoint that reflects every reconcile action taken.
type fleetResponse struct {
	Router     State         `json:"router"`
	Members    []fleetMember `json:"members"`
	Supervisor any           `json:"supervisor,omitempty"`
}

// SetFleetStatus attaches a status callback — typically the fleet
// supervisor's Status method — whose result is embedded in every
// /v1/fleet response. The callback must be safe for concurrent use;
// pass nil to detach.
func (rt *Router) SetFleetStatus(fn func() any) {
	rt.fleetStatus.Store(&fn)
}

// handleFleet aggregates the fleet: the router's State (ring health,
// breaker/drain flags, stampede stats — every gauge healthz reads) and
// a concurrent healthz scrape of each current member over the probe
// client. A member that fails to answer reports its error in place, so
// a half-dead fleet still renders.
func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		rt.fail(w, r, http.StatusMethodNotAllowed, "bad_request", "use GET")
		return
	}
	tp := rt.topo.Load()
	resp := fleetResponse{
		Router:  rt.State(),
		Members: make([]fleetMember, len(tp.members)),
	}
	if fn := rt.fleetStatus.Load(); fn != nil && *fn != nil {
		resp.Supervisor = (*fn)()
	}
	var wg sync.WaitGroup
	for i, m := range tp.members {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			resp.Members[i] = rt.scrapeMember(r.Context(), url)
		}(i, m)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// scrapeMember fetches one member's healthz. A 503 body is still
// returned verbatim — an unhealthy instance's self-report is exactly
// what the fleet view is for.
func (rt *Router) scrapeMember(ctx context.Context, url string) fleetMember {
	fm := fleetMember{URL: url}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/healthz", nil)
	if err != nil {
		fm.Error = err.Error()
		return fm
	}
	resp, err := rt.probeClient.Do(req)
	if err != nil {
		fm.Error = err.Error()
		return fm
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		fm.Error = err.Error()
		return fm
	}
	fm.Healthz = raw
	return fm
}
