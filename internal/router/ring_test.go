package router

import (
	"fmt"
	"testing"
)

// TestRingOrderIsDeterministicAndComplete: a key's preference list is
// stable across calls and across ring rebuilds, and names every
// instance exactly once — it must double as the failover schedule.
func TestRingOrderIsDeterministicAndComplete(t *testing.T) {
	r1 := newRing(5, 64)
	r2 := newRing(5, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("pattern-%d", i)
		a, b := r1.order(key), r2.order(key)
		if len(a) != 5 {
			t.Fatalf("key %q: order has %d entries, want 5", key, len(a))
		}
		seen := map[int]bool{}
		for j, idx := range a {
			if idx < 0 || idx >= 5 || seen[idx] {
				t.Fatalf("key %q: bad or repeated instance %d in %v", key, idx, a)
			}
			seen[idx] = true
			if b[j] != idx {
				t.Fatalf("key %q: rebuild changed order %v vs %v", key, a, b)
			}
		}
	}
}

// TestRingSpreadsKeys: with virtual nodes, no instance owns a wildly
// disproportionate share of random keys.
func TestRingSpreadsKeys(t *testing.T) {
	const instances, keys = 4, 4000
	r := newRing(instances, 64)
	owners := make([]int, instances)
	for i := 0; i < keys; i++ {
		owners[r.order(fmt.Sprintf("k-%d", i))[0]]++
	}
	for idx, n := range owners {
		// Perfect balance is 1000 each; 64 vnodes keeps every instance
		// within a loose 2.5x band. The assertion guards against gross
		// placement bugs (all keys on one instance), not statistics.
		if n < keys/instances/4 || n > keys*5/instances/2 {
			t.Fatalf("instance %d owns %d of %d keys: %v", idx, n, keys, owners)
		}
	}
}

// TestRingFailoverSpreads: when an instance dies, its keys must not
// all dump onto one successor — virtual nodes scatter each dead
// instance's keyspace across the survivors, which is the property that
// keeps a one-instance kill from cascading into a two-instance
// overload.
func TestRingFailoverSpreads(t *testing.T) {
	const instances, keys = 4, 4000
	r := newRing(instances, 64)
	const down = 2
	successors := make([]int, instances)
	orphans := 0
	for i := 0; i < keys; i++ {
		order := r.order(fmt.Sprintf("k-%d", i))
		if order[0] != down {
			continue
		}
		orphans++
		successors[order[1]]++
	}
	if orphans < keys/instances/4 {
		t.Fatalf("instance %d owned only %d keys; spread test has no power", down, orphans)
	}
	for idx, n := range successors {
		if idx == down {
			continue
		}
		if n == 0 {
			t.Fatalf("survivor %d inherited none of instance %d's %d keys: %v",
				idx, down, orphans, successors)
		}
		if n > orphans*3/4 {
			t.Fatalf("survivor %d inherited %d of %d orphaned keys — failover is not spreading: %v",
				idx, n, orphans, successors)
		}
	}
}
