package router

import (
	"fmt"
	"testing"
)

// ringMembers fabricates n stable member identities.
func ringMembers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingOrderIsDeterministicAndComplete: a key's preference list is
// stable across calls and across ring rebuilds, and names every
// instance exactly once — it must double as the failover schedule.
func TestRingOrderIsDeterministicAndComplete(t *testing.T) {
	r1 := newRing(ringMembers(5), 64)
	r2 := newRing(ringMembers(5), 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("pattern-%d", i)
		a, b := r1.order(key), r2.order(key)
		if len(a) != 5 {
			t.Fatalf("key %q: order has %d entries, want 5", key, len(a))
		}
		seen := map[int]bool{}
		for j, idx := range a {
			if idx < 0 || idx >= 5 || seen[idx] {
				t.Fatalf("key %q: bad or repeated instance %d in %v", key, idx, a)
			}
			seen[idx] = true
			if b[j] != idx {
				t.Fatalf("key %q: rebuild changed order %v vs %v", key, a, b)
			}
		}
	}
}

// TestRingSpreadsKeys: with virtual nodes, no instance owns a wildly
// disproportionate share of random keys.
func TestRingSpreadsKeys(t *testing.T) {
	const instances, keys = 4, 4000
	r := newRing(ringMembers(instances), 64)
	owners := make([]int, instances)
	for i := 0; i < keys; i++ {
		owners[r.order(fmt.Sprintf("k-%d", i))[0]]++
	}
	for idx, n := range owners {
		// Perfect balance is 1000 each; 64 vnodes keeps every instance
		// within a loose 2.5x band. The assertion guards against gross
		// placement bugs (all keys on one instance), not statistics.
		if n < keys/instances/4 || n > keys*5/instances/2 {
			t.Fatalf("instance %d owns %d of %d keys: %v", idx, n, keys, owners)
		}
	}
}

// TestRingFailoverSpreads: when an instance dies, its keys must not
// all dump onto one successor — virtual nodes scatter each dead
// instance's keyspace across the survivors, which is the property that
// keeps a one-instance kill from cascading into a two-instance
// overload.
func TestRingFailoverSpreads(t *testing.T) {
	const instances, keys = 4, 4000
	r := newRing(ringMembers(instances), 64)
	const down = 2
	successors := make([]int, instances)
	orphans := 0
	for i := 0; i < keys; i++ {
		order := r.order(fmt.Sprintf("k-%d", i))
		if order[0] != down {
			continue
		}
		orphans++
		successors[order[1]]++
	}
	if orphans < keys/instances/4 {
		t.Fatalf("instance %d owned only %d keys; spread test has no power", down, orphans)
	}
	for idx, n := range successors {
		if idx == down {
			continue
		}
		if n == 0 {
			t.Fatalf("survivor %d inherited none of instance %d's %d keys: %v",
				idx, down, orphans, successors)
		}
		if n > orphans*3/4 {
			t.Fatalf("survivor %d inherited %d of %d orphaned keys — failover is not spreading: %v",
				idx, n, orphans, successors)
		}
	}
}

// TestRingJoinMovesOnlyNewcomersKeys is the membership-math property
// behind live joins: growing an N-instance ring by one moves a key iff
// the newcomer wins it, so at most ~K/(N+1) keys rehash (bounded with
// statistical slack) and every moved key moves TO the new instance —
// survivors never shuffle keys among themselves, which is what keeps
// their diagram caches warm through a scale-up.
func TestRingJoinMovesOnlyNewcomersKeys(t *testing.T) {
	const keys = 20000
	for _, n := range []int{1, 2, 3, 4, 8} {
		base := ringMembers(n)
		grown := append(append([]string{}, base...), "http://10.0.9.99:8080")
		r1, r2 := newRing(base, 64), newRing(grown, 64)
		moved := 0
		for i := 0; i < keys; i++ {
			key := fmt.Sprintf("pattern-%d", i)
			before := base[r1.order(key)[0]]
			after := grown[r2.order(key)[0]]
			if before == after {
				continue
			}
			moved++
			if after != grown[n] {
				t.Fatalf("n=%d key %q moved %s -> %s, not to the joining instance",
					n, key, before, after)
			}
		}
		// Expected movement is keys/(n+1); vnode placement noise stays
		// well inside 1.5x of that with 64 vnodes. Also require movement
		// happened at all: a ring that never rehashes is not balancing.
		bound := keys*3/(2*(n+1)) + keys/100
		if moved == 0 || moved > bound {
			t.Fatalf("n=%d: join moved %d of %d keys, want (0, %d]", n, moved, keys, bound)
		}
		t.Logf("n=%d: join moved %d/%d keys (ideal %d, bound %d)", n, moved, keys, keys/(n+1), bound)
	}
}

// TestRingRemovalMovesOnlyDepartedKeys: shrinking the ring moves a key
// iff the departed instance owned it — the removal mirror of the join
// property.
func TestRingRemovalMovesOnlyDepartedKeys(t *testing.T) {
	const keys, n = 20000, 5
	members := ringMembers(n)
	const gone = 2
	shrunk := append(append([]string{}, members[:gone]...), members[gone+1:]...)
	r1, r2 := newRing(members, 64), newRing(shrunk, 64)
	moved, owned := 0, 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("pattern-%d", i)
		before := members[r1.order(key)[0]]
		after := shrunk[r2.order(key)[0]]
		if before == members[gone] {
			owned++
			continue // orphaned keys must move somewhere; any survivor is fine
		}
		if before != after {
			moved++
			t.Errorf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
	}
	if owned < keys/n/2 {
		t.Fatalf("departed instance owned only %d keys; test has no power", owned)
	}
	if moved > 0 {
		t.Fatalf("%d surviving-owner keys moved on an unrelated removal", moved)
	}
}
