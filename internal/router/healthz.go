package router

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// InstanceState is one ring member's health as the router sees it,
// embedded in the router's /v1/healthz.
type InstanceState struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Draining means the admin surface is retiring this member: no new
	// assignments; removal lands when Inflight holds at zero.
	Draining bool `json:"draining"`
	// BreakerOpen means the request-path circuit is holding the
	// instance out of rotation right now.
	BreakerOpen bool `json:"breaker_open"`
	// ConsecutiveFailures is the current request-path failure run.
	ConsecutiveFailures int64 `json:"consecutive_failures"`
	// Inflight counts requests currently proxied to this instance.
	Inflight int64 `json:"inflight"`
	// Requests/Failures are lifetime proxied-attempt totals, read from
	// the same registry /v1/metrics exposes.
	Requests int64 `json:"requests"`
	Failures int64 `json:"failures"`
}

// StampedeState summarizes the stampede-control layer, present in the
// snapshot only when the layer is enabled.
type StampedeState struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Coalesced int64 `json:"coalesced"`
	Inserts   int64 `json:"inserts"`
}

// State is the router's health snapshot.
type State struct {
	// Status is "ok" (whole ring eligible), "degraded" (partially), or
	// "unhealthy" (no instance eligible; healthz also answers 503).
	Status string `json:"status"`
	// Epoch is the topology version; it bumps on every join/eject.
	Epoch     uint64          `json:"epoch"`
	Instances []InstanceState `json:"instances"`
	Failovers int64           `json:"failovers"`
	Shed      int64           `json:"shed"`
	// PatternKeys is the learned body-hash→pattern table size.
	PatternKeys int `json:"pattern_keys"`
	// HotPatterns counts patterns currently promoted to replicated
	// reads (always 0 when hot replication is disabled).
	HotPatterns int `json:"hot_patterns"`
	// Stampede is the stampede-control summary, nil when disabled.
	Stampede *StampedeState `json:"stampede,omitempty"`
}

// State reads the snapshot against one topology load; every number
// comes from the router's registry or the same atomics its routing
// decisions use, so healthz, metrics, and behavior can never disagree.
func (rt *Router) State() State {
	now := time.Now()
	tp := rt.topo.Load()
	st := State{
		Epoch:       tp.epoch,
		Instances:   make([]InstanceState, 0, len(tp.insts)),
		Failovers:   rt.failovers.Value(),
		Shed:        rt.noHealthy.Value(),
		PatternKeys: rt.keys.len(),
	}
	if rt.hot != nil {
		st.HotPatterns = rt.hot.promotedCount()
	}
	if rt.stampede != nil {
		st.Stampede = &StampedeState{
			Entries:   rt.stampede.size(),
			Hits:      int64(rt.stampedeCount("hit").Value()),
			Coalesced: int64(rt.stampedeCount("coalesced").Value()),
			Inserts:   int64(rt.stampedeCount("insert").Value()),
		}
	}
	eligible := 0
	for _, in := range tp.insts {
		if in.eligible(now) {
			eligible++
		}
		st.Instances = append(st.Instances, InstanceState{
			URL:                 in.url,
			Healthy:             in.healthy.Load(),
			Draining:            in.draining.Load(),
			BreakerOpen:         in.breakerOpen(now),
			ConsecutiveFailures: in.consecFails.Load(),
			Inflight:            in.inflight.Load(),
			Requests:            int64(rt.reg.Value(mInstReqs, "instance", in.url)),
			Failures:            int64(rt.reg.Value(mInstFails, "instance", in.url)),
		})
	}
	switch eligible {
	case len(tp.insts):
		st.Status = "ok"
	case 0:
		st.Status = "unhealthy"
	default:
		st.Status = "degraded"
	}
	return st
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := rt.State()
	w.Header().Set("Content-Type", "application/json")
	if st.Status == "unhealthy" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	_ = json.NewEncoder(w).Encode(st)
}

// keytab remembers which canonical pattern a request body hashes to,
// learned from backend response headers, so isomorphic queries shard
// together. Bounded the same way the pool's affinity index is: at the
// cap the whole table resets — losing learned affinity costs a few
// cache-cold requests, never correctness.
type keytab struct {
	mu  sync.RWMutex
	m   map[uint64]string
	cap int
}

func newKeytab() *keytab {
	return &keytab{m: make(map[uint64]string), cap: 4096}
}

func (k *keytab) get(h uint64) string {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.m[h]
}

func (k *keytab) put(h uint64, pattern string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.m) >= k.cap {
		k.m = make(map[uint64]string, k.cap/4)
	}
	k.m[h] = pattern
}

func (k *keytab) len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.m)
}
