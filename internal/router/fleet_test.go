// Fleet observability surface: the router's trace ring and metrics
// families, whole-fleet trace assembly across a real HTTP hop to a
// backend instance, and the /v1/fleet health aggregate.
package router_test

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/leak"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func TestFleetObservability(t *testing.T) {
	t.Cleanup(leak.Check(t))
	t.Cleanup(http.DefaultClient.CloseIdleConnections)

	inst := httptest.NewServer(server.New(server.Config{CacheEntries: 64}))
	t.Cleanup(inst.Close)
	rt, err := router.New(router.Config{
		Backends:       []string{inst.URL},
		HealthInterval: 50 * time.Millisecond,
		Metrics:        telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	// One proxied request with a caller-chosen request ID.
	req, err := http.NewRequest(http.MethodPost, front.URL+"/v1/diagram",
		strings.NewReader(`{"sql":"`+strings.ReplaceAll(qSome, "\n", " ")+`","schema":"beers"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "fleet-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diagram via router = %d, want 200", resp.StatusCode)
	}
	traceID := resp.Header.Get(telemetry.TraceIDHeader)
	if traceID == "" {
		t.Fatalf("proxied response missing %s", telemetry.TraceIDHeader)
	}

	// Prometheus golden: the router's trace families are live.
	mresp, err := http.Get(front.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	exposition := string(raw)
	for _, want := range []string{
		"queryvis_router_traces_total 1",
		"queryvis_router_trace_ring_entries 1",
		`queryvis_router_requests_total{outcome="proxied"} 1`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("router exposition missing %q", want)
		}
	}

	// Whole-fleet trace assembly: the router's record merged with the
	// instance's spans, scraped across a real HTTP hop.
	tresp, err := http.Get(front.URL + "/v1/traces?trace_id=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	var traces struct {
		Total  uint64 `json:"total"`
		Traces []struct {
			RequestID  string           `json:"request_id"`
			Spans      []telemetry.Span `json:"spans"`
			Tree       string           `json:"tree"`
			MergeError string           `json:"merge_error"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK || len(traces.Traces) != 1 {
		t.Fatalf("/v1/traces?trace_id= = %d with %d traces, want 200 with 1",
			tresp.StatusCode, len(traces.Traces))
	}
	tr := traces.Traces[0]
	if tr.RequestID != "fleet-probe-1" || tr.MergeError != "" {
		t.Fatalf("trace = request_id %q merge_error %q", tr.RequestID, tr.MergeError)
	}
	var hops []string
	for _, sp := range tr.Spans {
		hops = append(hops, sp.Name)
	}
	for _, want := range []string{"router", "instance", "parse", "render"} {
		found := false
		for _, h := range hops {
			if h == want {
				found = true
			}
		}
		if !found {
			t.Errorf("merged trace missing %q span: %v", want, hops)
		}
	}
	if !strings.HasPrefix(tr.Tree, "router ") {
		t.Errorf("merged tree does not root at the router span:\n%s", tr.Tree)
	}

	// Unfiltered listing stays cheap: router spans only, no merge.
	lresp, err := http.Get(front.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(lresp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	lresp.Body.Close()
	if len(traces.Traces) != 1 || len(traces.Traces[0].Spans) != 1 ||
		traces.Traces[0].Spans[0].Name != "router" {
		t.Errorf("unfiltered listing = %+v, want the router span alone", traces.Traces)
	}

	// /v1/fleet: router state plus each member's own healthz, verbatim.
	fresp, err := http.Get(front.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	var fleet struct {
		Router struct {
			Instances []struct {
				URL     string `json:"url"`
				Healthy bool   `json:"healthy"`
			} `json:"instances"`
		} `json:"router"`
		Members []struct {
			URL     string          `json:"url"`
			Healthz json.RawMessage `json:"healthz"`
			Error   string          `json:"error"`
		} `json:"members"`
	}
	if err := json.NewDecoder(fresp.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	fresp.Body.Close()
	if fresp.StatusCode != http.StatusOK || len(fleet.Members) != 1 {
		t.Fatalf("/v1/fleet = %d with %d members, want 200 with 1", fresp.StatusCode, len(fleet.Members))
	}
	m := fleet.Members[0]
	if m.URL != inst.URL || m.Error != "" {
		t.Fatalf("fleet member = %+v", m)
	}
	var hz struct {
		Status string `json:"status"`
		Served int    `json:"served"`
	}
	if err := json.Unmarshal(m.Healthz, &hz); err != nil {
		t.Fatalf("member healthz not verbatim JSON: %v\n%s", err, m.Healthz)
	}
	if hz.Status != "ok" || hz.Served < 1 {
		t.Errorf("member healthz = %+v, want ok with served >= 1", hz)
	}

	// Method and filter validation on both read surfaces.
	for _, path := range []string{"/v1/traces", "/v1/fleet"} {
		presp, err := http.Post(front.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		presp.Body.Close()
		if presp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, presp.StatusCode)
		}
	}
	bresp, err := http.Get(front.URL + "/v1/traces?min_ms=junk")
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad min_ms = %d, want 400", bresp.StatusCode)
	}
}
