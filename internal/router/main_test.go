// Harness plumbing: the router chaos tests need real queryvisd-shaped
// instances they can SIGKILL — separate processes with their own
// listeners, not httptest handlers — and the only binary a test
// reliably has on disk is itself. TestMain diverts re-executions of the
// test binary into a small instance loop: listen on an ephemeral port,
// print the address, serve the hardened handler until killed.
package router_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

const envInstance = "QUERYVIS_ROUTER_TEST_INSTANCE"

func TestMain(m *testing.M) {
	if os.Getenv(envInstance) == "1" {
		runTestInstance()
		return
	}
	os.Exit(m.Run())
}

func runTestInstance() {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The parent scrapes this line for the ephemeral address.
	fmt.Printf("addr=%s\n", ln.Addr())
	h := server.New(server.Config{
		RequestTimeout:      5 * time.Second,
		MaxConcurrent:       64,
		CacheEntries:        256, // pattern headers feed the router's keytab
		AllowFaultInjection: true,
	})
	if err := http.Serve(ln, h); err != nil {
		os.Exit(1)
	}
}

// testInstance is one spawned child instance the test can kill.
type testInstance struct {
	URL  string
	cmd  *exec.Cmd
	done chan struct{}
}

// Kill SIGKILLs the instance — the chaos move — and reaps it.
func (ti *testInstance) Kill() {
	_ = ti.cmd.Process.Kill()
	<-ti.done
}

// startInstance re-executes the test binary as a live instance and
// waits for its address line.
func startInstance(t *testing.T) *testInstance {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), envInstance+"=1")
	cmd.Stderr = io.Discard
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ti := &testInstance{cmd: cmd, done: make(chan struct{})}
	go func() {
		_ = cmd.Wait()
		close(ti.done)
	}()
	t.Cleanup(ti.Kill)

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "addr="); ok {
				addrc <- a
				break
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		_, _ = io.Copy(io.Discard, stdout)
	}()
	select {
	case addr := <-addrc:
		ti.URL = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("instance never printed its address")
	case <-ti.done:
		t.Fatal("instance died before printing its address")
	}
	return ti
}

// diagramReq builds a /v1/diagram request body for sql on the beers
// schema.
func diagramReq(sql string) map[string]any {
	return map[string]any{"sql": sql, "schema": "beers"}
}

// qSome is a known-good paper query (Fig. 3a).
const qSome = `SELECT F.person FROM Frequents F, Likes L, Serves S
WHERE F.person = L.person AND F.bar = S.bar AND L.drink = S.drink`

// postJSON is a plain one-shot POST (no retries — tests that measure
// router behavior must not have a client-side retry loop hiding it).
func postJSON(t *testing.T, url string, v any) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(context.Background(),
		http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, raw
}
