// Regression: an instance-originated 429 must survive the failover
// path unchanged. The router deliberately retries a shed request onto
// the ring — the shedding instance's neighbors may have capacity — but
// when every other candidate fails at the transport level, the honest
// answer is the instance's own 429 with its better-informed Retry-After,
// not a router-minted 503 that masks the fleet's backpressure and
// misprices the client's retry.
package router_test

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/leak"
	"repro/internal/router"
	"repro/internal/telemetry"
)

// deadBackendURL returns a URL whose port was just released: connecting
// to it fails fast with ECONNREFUSED — a pure transport failure.
func deadBackendURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	_ = ln.Close()
	return url
}

func TestShedRetryAfterSurvivesFailover(t *testing.T) {
	t.Cleanup(leak.Check(t))

	// One saturated instance that always sheds with a distinctive
	// Retry-After, plus two dead members whose transport failures force
	// the failover schedule to run dry.
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":{"category":"overloaded","message":"all workers busy; retry later"}}`)
	}))
	t.Cleanup(shedder.Close)

	rt, err := router.New(router.Config{
		Backends:         []string{shedder.URL, deadBackendURL(t), deadBackendURL(t)},
		HealthInterval:   time.Hour, // no probes mid-test: all members stay eligible
		ProbeDownAfter:   100,
		BreakerThreshold: 100,
		InstanceAttempts: 1, // the per-instance retry ladder would blur the failover
		Metrics:          telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	// Distinct bodies land on distinct ring orders, so across the batch
	// the shedder occupies first, middle, and last failover positions —
	// the pass-through must hold in all of them.
	for i := 0; i < 8; i++ {
		body := diagramReq(fmt.Sprintf("%s AND F.person = 'p%d'", qSome, i))
		st, hdr, raw := postJSON(t, front.URL+"/v1/diagram", body)
		if st != http.StatusTooManyRequests {
			t.Fatalf("body %d: status = %d, want the instance's 429 passed through\n%s", i, st, raw)
		}
		if got := hdr.Get("Retry-After"); got != "7" {
			t.Fatalf("body %d: Retry-After = %q, want the instance's %q", i, got, "7")
		}
	}
}
