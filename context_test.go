package queryvis

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/corpus"
	"repro/internal/faults"
)

// deepStress builds a valid query nesting depth NOT EXISTS levels with
// several predicates per level — heavy enough that the unbounded
// pipeline takes hundreds of milliseconds, which is what makes the
// deadline assertions below meaningful.
func deepStress(depth int) string {
	var b strings.Builder
	b.WriteString("SELECT L0.drinker FROM Likes L0 WHERE ")
	for i := 1; i <= depth; i++ {
		fmt.Fprintf(&b,
			"NOT EXISTS (SELECT * FROM Likes L%d WHERE L%d.drinker = L%d.drinker "+
				"AND L%d.beer = L%d.beer AND L%d.person = L%d.person "+
				"AND L%d.drink <> 'water' AND L%d.drink <> 'soda' AND ",
			i, i, i-1, i, i-1, i, i-1, i, i)
	}
	fmt.Fprintf(&b, "L%d.beer = L%d.beer", depth, depth)
	b.WriteString(strings.Repeat(")", depth))
	return b.String()
}

func beersSchema(t *testing.T) *Schema {
	t.Helper()
	s, ok := SchemaByName("beers")
	if !ok {
		t.Fatal("beers schema missing")
	}
	return s
}

// TestFromSQLContextPreCanceled: an already-canceled context fails fast
// with an error that still satisfies errors.Is(err, context.Canceled)
// through the stage wrapping.
func TestFromSQLContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	_, err := FromSQLContext(ctx, deepStress(999), beersSchema(t), Options{})
	if err == nil {
		t.Fatal("pre-canceled pipeline succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if el := time.Since(start); el > time.Second {
		t.Fatalf("pre-canceled pipeline took %v", el)
	}
}

// TestFromSQLContextDeadline: on the deep-nesting stress corpus —
// which the unbounded pipeline needs hundreds of milliseconds for — a
// deadline must be honored within about 2x, proving cancellation is
// checked inside the recursive hot paths, not just between stages.
func TestFromSQLContextDeadline(t *testing.T) {
	const deadline = 100 * time.Millisecond
	s := beersSchema(t)

	for _, depth := range []int{600, 999} {
		sql := deepStress(depth)
		ctx, cancel := context.WithTimeout(context.Background(), deadline)
		start := time.Now()
		_, err := FromSQLContext(ctx, sql, s, Options{})
		elapsed := time.Since(start)
		cancel()

		if err == nil {
			// Fast machine finished under the deadline: nothing to assert.
			continue
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("depth %d: err = %v, want deadline exceeded", depth, err)
		}
		if elapsed > 2*deadline {
			t.Fatalf("depth %d: returned after %v, want within 2x the %v deadline",
				depth, elapsed, deadline)
		}
	}
}

// TestRenderContextDeadline: the render stages are cancelable too.
func TestRenderContextDeadline(t *testing.T) {
	res, err := FromSQL(corpus.Fig1UniqueSet, beersSchema(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := res.DOTContext(ctx, DOTOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("DOTContext err = %v", err)
	}
	if _, err := res.SVGContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("SVGContext err = %v", err)
	}
	if _, err := res.TextContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("TextContext err = %v", err)
	}
}

// TestPanicContainment: an injected panic at every stage surfaces as a
// typed *InternalError from the facade — never as a panic.
func TestPanicContainment(t *testing.T) {
	s := beersSchema(t)
	for _, stage := range faults.Stages {
		plan := &faults.Plan{
			Seed:   1,
			Faults: map[faults.Stage]faults.Fault{stage: {Action: faults.ActPanic}},
		}
		ctx := faults.WithPlan(context.Background(), plan)

		var err error
		switch stage {
		case faults.StageRender:
			var res *Result
			res, err = FromSQL(corpus.Fig1UniqueSet, s, Options{})
			if err != nil {
				t.Fatal(err)
			}
			_, err = res.DOTContext(ctx, DOTOptions{})
		case faults.StageVerify:
			// The verify point only fires when verification runs; strict
			// mode turns the contained panic into the returned error.
			_, err = FromSQLContext(ctx, corpus.Fig1UniqueSet, s, Options{Verify: VerifyStrict})
		default:
			_, err = FromSQLContext(ctx, corpus.Fig1UniqueSet, s, Options{})
		}
		if err == nil {
			t.Fatalf("stage %s: injected panic vanished", stage)
		}
		var ie *InternalError
		if !errors.As(err, &ie) {
			t.Fatalf("stage %s: err = %T %v, want *InternalError", stage, err, err)
		}
		if len(ie.Stack) == 0 {
			t.Fatalf("stage %s: InternalError carries no stack", stage)
		}
	}
}

// TestInjectedErrorIsStageError: injected errors keep their stage and
// their sentinel through the wrapping.
func TestInjectedErrorIsStageError(t *testing.T) {
	plan := &faults.Plan{
		Seed:   1,
		Faults: map[faults.Stage]faults.Fault{faults.StageResolve: {Action: faults.ActError}},
	}
	ctx := faults.WithPlan(context.Background(), plan)
	_, err := FromSQLContext(ctx, corpus.Fig1UniqueSet, beersSchema(t), Options{})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected in chain", err)
	}
	var se *StageError
	if !errors.As(err, &se) || se.Stage != StageResolve {
		t.Fatalf("err = %v, want StageError at resolve", err)
	}
}
