package queryvis

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/faults"
	"repro/internal/logictree"
	"repro/internal/sqlparse"
	"repro/internal/svg"
	"repro/internal/telemetry"
	"repro/internal/trc"
)

// Pipeline stage names, as carried by StageError.Stage and used as
// fault-injection points (internal/faults registers one per stage).
const (
	StageParse   = string(faults.StageParse)
	StageResolve = string(faults.StageResolve)
	StageConvert = string(faults.StageConvert)
	StageTree    = string(faults.StageTree)
	StageBuild   = string(faults.StageBuild)
	StageVerify  = string(faults.StageVerify)
	StageRender  = string(faults.StageRender)
)

// StageError wraps a failure with the pipeline stage it occurred in, so
// callers can distinguish a parse error (the user's fault) from, say, a
// diagram-construction error without string matching. Unwrap exposes the
// underlying error for errors.Is/As — including context.DeadlineExceeded
// and *LimitError.
type StageError struct {
	Stage string
	Err   error
}

func (e *StageError) Error() string { return e.Stage + ": " + e.Err.Error() }

func (e *StageError) Unwrap() error { return e.Err }

// InternalError is a panic converted to an error at the facade boundary:
// an internal invariant violation that, without the boundary, would have
// taken down the caller. It is never the user's fault.
type InternalError struct {
	Stage string
	Value any    // the recovered panic value
	Stack []byte // stack trace captured at recovery
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error in stage %s: %v", e.Stage, e.Value)
}

// panicBoundary converts a panic into an *InternalError through the
// pointed-to error. Deferred at every facade entry point, it guarantees
// that no internal invariant violation escapes as a panic.
func panicBoundary(stage string, errp *error) {
	if r := recover(); r != nil {
		*errp = &InternalError{Stage: stage, Value: r, Stack: debug.Stack()}
	}
}

// stageErr wraps non-nil errors with their stage; already-staged errors
// and limit errors pass through untouched.
func stageErr(stage string, err error) error {
	switch err.(type) {
	case *StageError, *LimitError:
		return err
	}
	return &StageError{Stage: stage, Err: err}
}

// FromSQLContext runs the full pipeline — parse, resolve, convert to
// TRC, build and optionally simplify the logic tree, construct the
// diagram — under a context and the Options' resource limits. With
// Options.Verify enabled it additionally proves the diagram correct by
// round-tripping it through inverse recovery, degrading per the ladder
// in verify.go when it cannot.
//
// Cancellation is cooperative at every stage: once ctx is done the
// pipeline returns promptly (well within 2× of a deadline even on
// pathologically deep inputs) with an error satisfying
// errors.Is(err, ctx.Err()). Limit violations surface as *LimitError,
// stage failures as *StageError, verification failures in strict mode as
// *VerifyError, and internal panics are contained at this boundary and
// returned as *InternalError — FromSQLContext never panics, whatever the
// input.
func FromSQLContext(ctx context.Context, sql string, s *Schema, opts Options) (*Result, error) {
	if opts.Tracer != nil {
		ctx = telemetry.WithTracer(ctx, opts.Tracer)
	}
	res, err := runPipeline(ctx, sql, s, opts)
	if opts.Verify == VerifyOff {
		if err != nil {
			return nil, err
		}
		res.VerifyStatus = VerifyStatusOff
		return res, nil
	}
	sp := telemetry.StartSpan(ctx, StageVerify)
	defer sp.End()
	out, verr := verifyOrDegrade(ctx, res, err, opts, sp)
	switch {
	case out != nil:
		if out.VerifyStatus != "" {
			sp.Annotate("status", out.VerifyStatus)
		}
		if out.Degraded != "" {
			sp.Annotate("rung", out.Degraded)
		}
	case verr != nil:
		var ve *VerifyError
		if errors.As(verr, &ve) {
			sp.Annotate("status", ve.Status)
		}
	}
	return out, verr
}

// runPipeline executes the forward pipeline, filling the Result stage by
// stage so that on failure the completed prefix survives alongside the
// error — the degradation ladder feeds on those partial artifacts. The
// returned Result is never nil; fields beyond the failed stage are zero.
//
// Each stage runs under a telemetry span (a no-op when no tracer is on
// the context): the span opens before the stage's fault-injection point
// and closes on every exit, panics included, so a trace always shows
// exactly the stages that were entered.
func runPipeline(ctx context.Context, sql string, s *Schema, opts Options) (res *Result, err error) {
	lim := opts.Limits
	res = &Result{limits: lim}
	defer panicBoundary("pipeline", &err)

	// stage brackets one pipeline stage with its span; defer guarantees
	// the span ends even when f panics into the pipeline boundary above.
	stage := func(name string, f func() error) error {
		sp := telemetry.StartSpan(ctx, name)
		defer sp.End()
		return f()
	}

	if lim != nil {
		if err := check(LimitQueryBytes, len(sql), lim.MaxQueryBytes); err != nil {
			return res, err
		}
	}
	if err := stage(StageParse, func() error {
		if err := faults.Fire(ctx, faults.StageParse); err != nil {
			return stageErr(StageParse, err)
		}
		q, err := sqlparse.ParseContext(ctx, sql)
		if err != nil {
			return stageErr(StageParse, err)
		}
		res.Query = q
		if lim != nil {
			if err := check(LimitNestingDepth, q.NestingDepth(), lim.MaxNestingDepth); err != nil {
				return err
			}
			if err := check(LimitPredicates, q.PredicateCount(), lim.MaxPredicates); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return res, err
	}

	var r *sqlparse.Resolution
	if err := stage(StageResolve, func() error {
		if err := faults.Fire(ctx, faults.StageResolve); err != nil {
			return stageErr(StageResolve, err)
		}
		var err error
		if r, err = sqlparse.ResolveContext(ctx, res.Query, s); err != nil {
			return stageErr(StageResolve, err)
		}
		return nil
	}); err != nil {
		return res, err
	}

	if err := stage(StageConvert, func() error {
		if err := faults.Fire(ctx, faults.StageConvert); err != nil {
			return stageErr(StageConvert, err)
		}
		e, err := trc.ConvertContext(ctx, res.Query, r)
		if err != nil {
			return stageErr(StageConvert, err)
		}
		res.TRC = e
		return nil
	}); err != nil {
		return res, err
	}

	if err := stage(StageTree, func() error {
		if err := faults.Fire(ctx, faults.StageTree); err != nil {
			return stageErr(StageTree, err)
		}
		raw, err := logictree.FromTRCContext(ctx, res.TRC)
		if err != nil {
			return stageErr(StageTree, err)
		}
		if !opts.KeepExistsBlocks {
			if _, err := raw.FlattenContext(ctx); err != nil {
				return stageErr(StageTree, err)
			}
		}
		res.RawTree = raw
		tree := raw
		if opts.Simplify {
			if tree, err = raw.SimplifiedContext(ctx); err != nil {
				return stageErr(StageTree, err)
			}
		}
		res.Tree = tree
		return nil
	}); err != nil {
		return res, err
	}

	if err := stage(StageBuild, func() error {
		if err := faults.Fire(ctx, faults.StageBuild); err != nil {
			return stageErr(StageBuild, err)
		}
		d, err := core.BuildContext(ctx, res.Tree)
		if err != nil {
			return stageErr(StageBuild, err)
		}
		if lim != nil {
			if err := check(LimitDiagramNodes, len(d.Tables), lim.MaxDiagramNodes); err != nil {
				return err
			}
			if err := check(LimitDiagramEdges, len(d.Edges), lim.MaxDiagramEdges); err != nil {
				return err
			}
		}
		res.Diagram = d
		res.Interpretation = core.Interpret(res.Tree)
		return nil
	}); err != nil {
		return res, err
	}
	return res, nil
}

// checkOutput enforces MaxOutputBytes on a rendered artifact.
func (r *Result) checkOutput(n int) error {
	if r.limits == nil {
		return nil
	}
	return check(LimitOutputBytes, n, r.limits.MaxOutputBytes)
}

// DOTContext renders the diagram as a GraphViz program under a context:
// rendering is cancelable, its size is bounded by the pipeline's
// MaxOutputBytes limit, and panics are contained at this boundary.
func (r *Result) DOTContext(ctx context.Context, o DOTOptions) (s string, err error) {
	sp := telemetry.StartSpan(ctx, StageRender)
	defer sp.End()
	defer panicBoundary(StageRender, &err)
	if err := faults.Fire(ctx, faults.StageRender); err != nil {
		return "", stageErr(StageRender, err)
	}
	out, err := dot.RenderContext(ctx, r.Diagram, o)
	if err != nil {
		return "", stageErr(StageRender, err)
	}
	if err := r.checkOutput(len(out)); err != nil {
		return "", err
	}
	return out, nil
}

// SVGContext renders the diagram as a standalone SVG document under a
// context, with the same cancellation, output-size, and panic guarantees
// as DOTContext.
func (r *Result) SVGContext(ctx context.Context) (s string, err error) {
	sp := telemetry.StartSpan(ctx, StageRender)
	defer sp.End()
	defer panicBoundary(StageRender, &err)
	if err := faults.Fire(ctx, faults.StageRender); err != nil {
		return "", stageErr(StageRender, err)
	}
	out, err := svg.RenderContext(ctx, r.Diagram)
	if err != nil {
		return "", stageErr(StageRender, err)
	}
	if err := r.checkOutput(len(out)); err != nil {
		return "", err
	}
	return out, nil
}

// TextContext renders the plain-text diagram under the pipeline's
// output-size limit and panic boundary.
func (r *Result) TextContext(ctx context.Context) (s string, err error) {
	sp := telemetry.StartSpan(ctx, StageRender)
	defer sp.End()
	defer panicBoundary(StageRender, &err)
	if err := faults.Fire(ctx, faults.StageRender); err != nil {
		return "", stageErr(StageRender, err)
	}
	if err := ctx.Err(); err != nil {
		return "", stageErr(StageRender, err)
	}
	out := dot.Text(r.Diagram)
	if err := r.checkOutput(len(out)); err != nil {
		return "", err
	}
	return out, nil
}
