package queryvis

import (
	"repro/internal/diagcache"
	"repro/internal/telemetry"
)

// Option is a functional setting for NewOptions, the composable way to
// assemble an Options value:
//
//	opts := queryvis.NewOptions(
//		queryvis.WithSimplify(true),
//		queryvis.WithVerify(queryvis.VerifyDegrade),
//		queryvis.WithCache(cache),
//	)
type Option func(*Options)

// NewOptions applies the given options over the zero Options value.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithSimplify toggles the ∄∄ → ∀∃ rewrite (Section 4.7).
func WithSimplify(v bool) Option { return func(o *Options) { o.Simplify = v } }

// WithKeepExistsBlocks disables flattening of ∃ subquery blocks.
func WithKeepExistsBlocks(v bool) Option { return func(o *Options) { o.KeepExistsBlocks = v } }

// WithLimits bounds the pipeline's resource use; nil disables bounds.
func WithLimits(l *Limits) Option { return func(o *Options) { o.Limits = l } }

// WithVerify selects the self-verification mode.
func WithVerify(m VerifyMode) Option { return func(o *Options) { o.Verify = m } }

// WithVerifyBudget bounds the inverse search in nodes.
func WithVerifyBudget(n int) Option { return func(o *Options) { o.VerifyBudget = n } }

// WithTracer attaches a telemetry tracer recording per-stage spans.
func WithTracer(t *telemetry.Tracer) Option { return func(o *Options) { o.Tracer = t } }

// WithCache attaches a pattern-keyed diagram cache: FromSQLCached and
// FromSQLCachedContext serve rendered results from it when the query's
// logical pattern is already cached, and insert newly verified builds.
// Plain FromSQL/FromSQLContext ignore the cache — memoization is only
// ever an explicit opt-in.
func WithCache(c *diagcache.Cache) Option { return func(o *Options) { o.Cache = c } }
