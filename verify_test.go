package queryvis

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/faults"
	"repro/internal/inverse"
	"repro/internal/oracle"
	"repro/internal/sqlparse"
)

// TestVerifyHealthy: every paper query verifies in both strict and
// degrade mode, in both ∄ and simplified form, with a recovered tree
// witness and no degradation.
func TestVerifyHealthy(t *testing.T) {
	s := beersSchema(t)
	queries := []string{corpus.Fig1UniqueSet, corpus.Fig3QSome, corpus.Fig3QOnly}
	for _, mode := range []VerifyMode{VerifyDegrade, VerifyStrict} {
		for _, simplify := range []bool{false, true} {
			for i, sql := range queries {
				res, err := FromSQLContext(context.Background(), sql, s,
					Options{Simplify: simplify, Verify: mode})
				if err != nil {
					t.Fatalf("mode %v simplify %v query %d: %v", mode, simplify, i, err)
				}
				if res.VerifyStatus != VerifyStatusVerified {
					t.Fatalf("query %d: status %q (%s), want verified", i, res.VerifyStatus, res.VerifyDetail)
				}
				if res.Degraded != "" {
					t.Fatalf("query %d: degraded to %q on a healthy query", i, res.Degraded)
				}
				if res.Recovered == nil {
					t.Fatalf("query %d: verified result has no recovered-tree witness", i)
				}
			}
		}
	}
}

// TestVerifyOracleCorpusStrict is the acceptance check: every
// non-degenerate depth-≤3 query the oracle generates must round-trip
// diagram → logic tree isomorphic to the forward tree under
// verify=strict.
func TestVerifyOracleCorpusStrict(t *testing.T) {
	const n = 300
	cfg := oracle.DefaultConfig()
	schemas := map[string]*Schema{}
	for _, name := range cfg.Schemas {
		s, ok := SchemaByName(name)
		if !ok {
			t.Fatalf("unknown schema %q", name)
		}
		schemas[name] = s
	}
	master := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(master.Int63()))
		name := cfg.Schemas[rng.Intn(len(cfg.Schemas))]
		q := oracle.Generate(rng, schemas[name], cfg)
		sql := sqlparse.Format(q)
		res, err := FromSQLContext(context.Background(), sql, schemas[name],
			Options{Verify: VerifyStrict})
		if err != nil {
			t.Fatalf("query %d failed strict verification: %v\n%s", i, err, sql)
		}
		if res.VerifyStatus != VerifyStatusVerified {
			t.Fatalf("query %d: status %q\n%s", i, res.VerifyStatus, sql)
		}
	}
}

// TestVerifyBudgetDegrades: a query whose inverse search exceeds the
// budget degrades to the simplified rung with an honest status in
// degrade mode and fails with a *VerifyError in strict mode.
func TestVerifyBudgetDegrades(t *testing.T) {
	s := beersSchema(t)
	var b strings.Builder
	b.WriteString("SELECT L0.drinker FROM Likes L0 WHERE ")
	for i := 1; i <= 7; i++ {
		if i > 1 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b,
			"NOT EXISTS (SELECT * FROM Likes L%d WHERE L%d.drinker = L0.drinker AND L%d.beer = 'b%d')",
			i, i, i, i)
	}
	wide := b.String()

	res, err := FromSQLContext(context.Background(), wide, s,
		Options{Verify: VerifyDegrade, VerifyBudget: 5_000})
	if err != nil {
		t.Fatalf("degrade mode errored: %v", err)
	}
	if res.VerifyStatus != VerifyStatusBudget {
		t.Fatalf("status = %q (%s), want budget_exhausted", res.VerifyStatus, res.VerifyDetail)
	}
	// The wide query is one flat level of ∄ blocks — no ∄∄ pair to
	// rewrite — so the simplified rung honestly skips and the ∄-form
	// diagram serves.
	if res.Degraded != RungExistsForm {
		t.Fatalf("degraded rung = %q, want exists_form", res.Degraded)
	}
	if res.Diagram == nil {
		t.Fatal("exists_form rung served no diagram")
	}

	_, err = FromSQLContext(context.Background(), wide, s,
		Options{Verify: VerifyStrict, VerifyBudget: 5_000})
	var ve *VerifyError
	if !errors.As(err, &ve) || ve.Status != VerifyStatusBudget {
		t.Fatalf("strict err = %v, want *VerifyError{budget_exhausted}", err)
	}
	var be *inverse.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("strict err chain lacks *BudgetError: %v", err)
	}

	// The same query verifies with the budget lifted.
	res, err = FromSQLContext(context.Background(), wide, s,
		Options{Verify: VerifyStrict, VerifyBudget: -1})
	if err != nil {
		t.Fatalf("unbounded budget: %v", err)
	}
	if res.VerifyStatus != VerifyStatusVerified {
		t.Fatalf("unbounded budget status = %q", res.VerifyStatus)
	}
}

// plan builds a fault plan from stage → fault.
func plan(fs map[faults.Stage]faults.Fault) context.Context {
	return faults.WithPlan(context.Background(), &faults.Plan{Seed: 1, Faults: fs})
}

// TestDegradationLadderRungs drives each rung deterministically with
// injected faults, asserting the rung and the honesty of the status.
func TestDegradationLadderRungs(t *testing.T) {
	s := beersSchema(t)
	cases := []struct {
		name   string
		faults map[faults.Stage]faults.Fault
		rung   string
		status string
	}{
		// Verify fails; the ladder's simplify+build both work: rung 1.
		{"simplified", map[faults.Stage]faults.Fault{
			faults.StageVerify: {Action: faults.ActError},
		}, RungSimplified, VerifyStatusError},
		// Verify fails and the ladder's re-simplify (StageTree call #2)
		// fails, but the plain rebuild works: rung 2.
		{"exists_form", map[faults.Stage]faults.Fault{
			faults.StageVerify: {Action: faults.ActError},
			faults.StageTree:   {Action: faults.ActError, OnCall: 2},
		}, RungExistsForm, VerifyStatusError},
		// Build fails persistently: the pipeline error engages the ladder,
		// both diagram rungs refail on the same fault, TRC text serves.
		{"trc", map[faults.Stage]faults.Fault{
			faults.StageBuild: {Action: faults.ActError},
		}, RungTRC, VerifyStatusError},
		// A panicking build degrades the same way panics contained.
		{"trc_panic", map[faults.Stage]faults.Fault{
			faults.StageBuild: {Action: faults.ActPanic},
		}, RungTRC, VerifyStatusError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := FromSQLContext(plan(tc.faults), corpus.Fig1UniqueSet, s,
				Options{Verify: VerifyDegrade})
			if err != nil {
				t.Fatalf("degrade mode errored: %v", err)
			}
			if res.Degraded != tc.rung {
				t.Fatalf("rung = %q (status %q, %s), want %q",
					res.Degraded, res.VerifyStatus, res.VerifyDetail, tc.rung)
			}
			if res.VerifyStatus != tc.status {
				t.Fatalf("status = %q, want %q", res.VerifyStatus, tc.status)
			}
			if tc.rung == RungTRC {
				if res.TRCText == "" {
					t.Fatal("TRC rung served no calculus text")
				}
				if res.Diagram != nil {
					t.Fatal("TRC rung leaked a diagram")
				}
				if !strings.Contains(res.TRCText, "∄") && !strings.Contains(res.TRCText, "¬∃") &&
					!strings.Contains(res.TRCText, "NOT") && !strings.Contains(res.TRCText, "Likes") {
					t.Fatalf("TRC text looks wrong: %q", res.TRCText)
				}
			} else if res.Diagram == nil {
				t.Fatal("diagram rung served no diagram")
			}
		})
	}
}

// TestVerifyStrictFailsClosed: in strict mode a pipeline fault is an
// error, never a degraded response.
func TestVerifyStrictFailsClosed(t *testing.T) {
	s := beersSchema(t)
	ctx := plan(map[faults.Stage]faults.Fault{faults.StageBuild: {Action: faults.ActError}})
	_, err := FromSQLContext(ctx, corpus.Fig1UniqueSet, s, Options{Verify: VerifyStrict})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected build error", err)
	}
}

// TestVerifyUserFaultsNotDegraded: parse errors, unknown tables, and
// limit violations surface as errors even in degrade mode — the ladder
// must not fabricate output for requests with nothing trustworthy to
// serve.
func TestVerifyUserFaultsNotDegraded(t *testing.T) {
	s := beersSchema(t)
	lim := DefaultLimits()
	lim.MaxNestingDepth = 1
	cases := []struct {
		name string
		sql  string
		opts Options
		want func(error) bool
	}{
		{"parse", "SELECT FROM WHERE", Options{Verify: VerifyDegrade}, func(err error) bool {
			var se *StageError
			return errors.As(err, &se) && se.Stage == StageParse
		}},
		{"resolve", "SELECT N.x FROM Nope N", Options{Verify: VerifyDegrade}, func(err error) bool {
			var se *StageError
			return errors.As(err, &se) && se.Stage == StageResolve
		}},
		{"limit", corpus.Fig1UniqueSet, Options{Verify: VerifyDegrade, Limits: &lim}, func(err error) bool {
			var le *LimitError
			return errors.As(err, &le) && le.Limit == LimitNestingDepth
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := FromSQLContext(context.Background(), tc.sql, s, tc.opts)
			if err == nil {
				t.Fatalf("got degraded result (rung %q), want error", res.Degraded)
			}
			if !tc.want(err) {
				t.Fatalf("wrong error: %v", err)
			}
		})
	}
}

// TestVerifyCancellationPropagates: a dead context is never hidden by
// the ladder.
func TestVerifyCancellationPropagates(t *testing.T) {
	s := beersSchema(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FromSQLContext(ctx, corpus.Fig1UniqueSet, s, Options{Verify: VerifyDegrade})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestVerifyKeepExistsBlocks: verification flattens a clone when the
// caller keeps ∃ blocks, and still verifies.
func TestVerifyKeepExistsBlocks(t *testing.T) {
	s := beersSchema(t)
	res, err := FromSQLContext(context.Background(), corpus.Fig3QOnly, s,
		Options{Verify: VerifyStrict, KeepExistsBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyStatus != VerifyStatusVerified {
		t.Fatalf("status = %q", res.VerifyStatus)
	}
}

// TestParseVerifyMode covers the wire mapping.
func TestParseVerifyMode(t *testing.T) {
	for in, want := range map[string]VerifyMode{
		"": VerifyOff, "off": VerifyOff, "degrade": VerifyDegrade, "strict": VerifyStrict,
	} {
		got, err := ParseVerifyMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseVerifyMode(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseVerifyMode("nope"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestSimplifiedRungSkipsFlatQueries: a query with no negation has no ∀∃
// form; a verify failure must degrade to the ∄ (here: flat) rung, not a
// mislabeled "simplified" copy.
func TestSimplifiedRungSkipsFlatQueries(t *testing.T) {
	s := beersSchema(t)
	ctx := plan(map[faults.Stage]faults.Fault{faults.StageVerify: {Action: faults.ActError}})
	res, err := FromSQLContext(ctx, corpus.Fig3QSome, s, Options{Verify: VerifyDegrade})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded != RungExistsForm {
		t.Fatalf("rung = %q, want exists_form", res.Degraded)
	}
}
